// Flagged fixture for ctxpoll: context-holding kernel functions whose
// draw loops never poll. The import path ends in /core, so the package is
// under the contract; canvas types are local stand-ins.
package core

import "context"

type canvas struct{}

func (c *canvas) DrawPoints(n int)  {}
func (c *canvas) DrawPolygon(k int) {}
func drawRegion(c *canvas, k int)   {}
func fillTile(c *canvas, x, y int)  {}

// pollFreeRegionLoop loops over regions drawing each without ever looking
// at ctx.
func pollFreeRegionLoop(ctx context.Context, c *canvas, regions []int) error {
	for _, k := range regions { // want "loop performs draw work but neither polls ctx.Err"
		drawRegion(c, k)
	}
	return ctx.Err()
}

// pollFreeTileLoop: classic nested tile sweep, no poll anywhere.
func pollFreeTileLoop(ctx context.Context, c *canvas, w, h int) error {
	if err := ctx.Err(); err != nil { // polling before the loop is not polling inside it
		return err
	}
	for y := 0; y < h; y++ { // want "loop performs draw work but neither polls ctx.Err"
		for x := 0; x < w; x++ { // want "loop performs draw work but neither polls ctx.Err"
			fillTile(c, x, y)
		}
	}
	return nil
}

// pollOnlyInGoroutine: the poll lives in a spawned closure, which does not
// cancel this loop.
func pollOnlyInGoroutine(ctx context.Context, c *canvas, n int) {
	watch := func() { <-ctx.Done() }
	go watch()
	for i := 0; i < n; i++ { // want "loop performs draw work but neither polls ctx.Err"
		c.DrawPoints(i)
	}
}

// suppressedLoop demonstrates the escape hatch.
func suppressedLoop(ctx context.Context, c *canvas, bins []int) {
	//lint:ignore ctxpoll fixture: bin count is tiny and bounded, poll amortized at the call site
	for _, b := range bins {
		c.DrawPolygon(b)
	}
	_ = ctx
}

// scanBlocksNoPoll models the segment scan loop with its per-block poll
// removed: zone-pruned block iteration drawing each surviving block, with
// an unbounded block count and no ctx check inside the loop.
func scanBlocksNoPoll(ctx context.Context, c *canvas, pruned []bool) error {
	for b := range pruned { // want "loop performs draw work but neither polls ctx.Err"
		if pruned[b] {
			continue
		}
		c.DrawPoints(b)
	}
	return ctx.Err()
}

func rasterizeCell(c *canvas, cell int) {}

// refineFringeNoPoll models the geoblocks fringe-refinement loop with its
// poll removed: per-cell rasterization, unbounded cells, no ctx check
// anywhere inside the loop.
func refineFringeNoPoll(ctx context.Context, c *canvas, fringe []int) error {
	for _, cell := range fringe { // want "loop performs draw work but neither polls ctx.Err"
		rasterizeCell(c, cell)
	}
	return ctx.Err()
}

func renderSlab(c *canvas, slab int) {}

// patchPyramidNoPoll models the geoblocks append-patch sweep with its
// strided poll deleted: per-appended-point cell rasterization over an
// unbounded tail, nothing in the loop ever looks at ctx.
func patchPyramidNoPoll(ctx context.Context, c *canvas, oldLen, n int) error {
	for i := oldLen; i < n; i++ { // want "loop performs draw work but neither polls ctx.Err"
		rasterizeCell(c, i)
	}
	return ctx.Err()
}

// foldSlabsNoDelegate models the slab-fold loop with the per-slab context
// delegation dropped: each cached-window slab recomputes through the
// render path, but the callee never receives ctx and the loop never polls.
func foldSlabsNoDelegate(ctx context.Context, c *canvas, slabs []int) error {
	for _, s := range slabs { // want "loop performs draw work but neither polls ctx.Err"
		renderSlab(c, s)
	}
	return ctx.Err()
}
