package cfg

// Forward may-reach dataflow over a Graph.
//
// Facts are opaque comparable keys (analyzers use per-site pointers). The
// engine computes, for every block, the set of facts that MAY hold on entry
// and on exit: In(b) is the union over predecessors p of Edge(p, b, Out(p)),
// and Out(b) = Transfer(b, In(b)). Iteration runs to a fixpoint; since
// transfer functions are monotone over a finite fact domain (gen/kill on a
// fixed site set), termination is guaranteed.

// Set is a fact set. Callers must treat returned sets as immutable.
type Set[K comparable] map[K]bool

// Clone returns a copy of s.
func (s Set[K]) Clone() Set[K] {
	c := make(Set[K], len(s))
	for k, v := range s {
		if v {
			c[k] = true
		}
	}
	return c
}

func (s Set[K]) equal(o Set[K]) bool {
	if len(s) != len(o) {
		return false
	}
	for k := range s {
		if !o[k] {
			return false
		}
	}
	return true
}

// Result holds the fixpoint solution.
type Result[K comparable] struct {
	In, Out map[*Block]Set[K]
}

// Forward solves a forward may analysis.
//
// transfer maps a block's entry set to its exit set (gen/kill over the
// block's nodes, in order). edge, when non-nil, refines the facts flowing
// across one specific edge — the hook branch-sensitive analyzers use to
// kill facts on, say, the "err != nil" edge of a conditional. Either
// function may return its argument unchanged; neither may mutate it.
func Forward[K comparable](g *Graph,
	transfer func(b *Block, in Set[K]) Set[K],
	edge func(from, to *Block, out Set[K]) Set[K],
) *Result[K] {
	res := &Result[K]{
		In:  make(map[*Block]Set[K], len(g.Blocks)),
		Out: make(map[*Block]Set[K], len(g.Blocks)),
	}
	for _, b := range g.Blocks {
		res.In[b] = Set[K]{}
		res.Out[b] = Set[K]{}
	}

	// Worklist seeded with every block in index order (entry first).
	inList := make(map[*Block]bool, len(g.Blocks))
	var work []*Block
	for _, b := range g.Blocks {
		work = append(work, b)
		inList[b] = true
	}
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		inList[b] = false

		in := Set[K]{}
		for _, p := range g.Preds(b) {
			facts := res.Out[p]
			if edge != nil {
				facts = edge(p, b, facts)
			}
			for k := range facts {
				in[k] = true
			}
		}
		res.In[b] = in
		out := transfer(b, in)
		if out == nil {
			out = Set[K]{}
		}
		if !out.equal(res.Out[b]) {
			res.Out[b] = out
			for _, s := range b.Succs {
				if !inList[s] {
					inList[s] = true
					work = append(work, s)
				}
			}
		}
	}
	return res
}

// AtExit returns the facts that may hold when the function returns — the
// entry set of the synthetic exit block.
func (r *Result[K]) AtExit(g *Graph) Set[K] { return r.In[g.Exit] }
