// Package cfg builds intra-procedural control-flow graphs over Go function
// bodies using only the standard library's go/ast — the flow-sensitive
// backbone of urbane-lint's poolleak and gaugepair analyzers.
//
// The graph is a set of basic blocks. Each block holds the statements that
// execute straight-line within it, in execution order, and edges to its
// possible successors. Structured control flow (if/for/range/switch/
// type-switch/select), labeled break/continue, goto, fallthrough, and
// panic/os.Exit terminators are modeled; see DESIGN.md ("CFG & dataflow
// framework") for the precise scope and the known imprecision.
//
// Conventions the analyzers rely on:
//
//   - Blocks[0] is the entry block; Exit is a synthetic, statement-free
//     block every return (and the fall-off-the-end path) edges to.
//   - A block that ends in a two-way conditional branch has Cond set and
//     exactly two successors: Succs[0] is the true edge, Succs[1] the false
//     edge. Dataflow transfer functions can refine facts per edge (for
//     example, "err != nil" implies the paired resource was never acquired).
//   - A range loop header has Cond == nil but still branches: Succs[0]
//     enters the body, Succs[1] leaves the loop (zero iterations).
//   - defer statements appear as ordinary nodes at their registration
//     point. For may-leak style analyses this is the sound reading: every
//     path through the registration runs the deferred call at function
//     exit, and no path that skips it does.
//   - Function literals are opaque: their bodies are NOT inlined into the
//     enclosing graph (they run at call time, not in place). Analyzers
//     build a separate graph per FuncLit.
package cfg

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"strings"
)

// Block is one basic block.
type Block struct {
	Index int
	// Kind is a human-readable label ("entry", "if.then", "for.body", ...)
	// used by the golden dump; analyzers should not dispatch on it.
	Kind string
	// Nodes are the statements (and init statements / range clauses) that
	// execute in this block, in order.
	Nodes []ast.Node
	// Cond, when non-nil, is the boolean expression this block branches on:
	// Succs[0] is taken when Cond is true, Succs[1] when it is false.
	Cond  ast.Expr
	Succs []*Block
}

// Graph is the control-flow graph of one function body.
type Graph struct {
	// Name labels the graph in dumps ("(*RasterJoin).drawTile", "func@12").
	Name   string
	Blocks []*Block
	Entry  *Block
	Exit   *Block

	preds map[*Block][]*Block
}

// Preds returns the predecessors of b (computed once, cached).
func (g *Graph) Preds(b *Block) []*Block {
	if g.preds == nil {
		g.preds = make(map[*Block][]*Block)
		for _, blk := range g.Blocks {
			for _, s := range blk.Succs {
				g.preds[s] = append(g.preds[s], blk)
			}
		}
	}
	return g.preds[b]
}

// builder carries the construction state.
type builder struct {
	g   *Graph
	cur *Block
	// break/continue targets, innermost last.
	breaks    []loopTarget
	continues []loopTarget
	// labels maps a label name to its goto target block. Forward gotos
	// create the block before the labeled statement is reached.
	labels map[string]*Block
	// pendingLabel is the label naming the next loop/switch/select, so
	// labeled break/continue can address it.
	pendingLabel string
}

type loopTarget struct {
	label string
	block *Block
}

// New builds the graph for a function body. name labels dumps; body may be
// any *ast.BlockStmt (FuncDecl.Body or FuncLit.Body).
func New(name string, body *ast.BlockStmt) *Graph {
	g := &Graph{Name: name}
	b := &builder{g: g, labels: make(map[string]*Block)}
	entry := b.newBlock("entry")
	g.Entry = entry
	g.Exit = &Block{Kind: "exit"}
	b.cur = entry
	b.stmtList(body.List)
	// Fall off the end of the body: implicit return.
	b.jump(g.Exit)
	g.Exit.Index = len(g.Blocks)
	g.Blocks = append(g.Blocks, g.Exit)
	return g
}

// FuncName renders a display name for a FuncDecl ("(*T).m" or "f").
func FuncName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	var buf bytes.Buffer
	_ = printer.Fprint(&buf, token.NewFileSet(), fd.Recv.List[0].Type)
	return "(" + buf.String() + ")." + fd.Name.Name
}

func (b *builder) newBlock(kind string) *Block {
	blk := &Block{Index: len(b.g.Blocks), Kind: kind}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

// jump adds an edge cur -> to unless cur already terminated.
func (b *builder) jump(to *Block) {
	if b.cur != nil {
		b.cur.Succs = append(b.cur.Succs, to)
	}
	b.cur = nil
}

// startBlock makes blk the current block.
func (b *builder) startBlock(blk *Block) { b.cur = blk }

// emit appends a straight-line node to the current block, reviving a dead
// current block as unreachable code.
func (b *builder) emit(n ast.Node) {
	if b.cur == nil {
		b.cur = b.newBlock("unreachable")
	}
	b.cur.Nodes = append(b.cur.Nodes, n)
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// terminates reports whether a call expression never returns.
func terminates(call *ast.CallExpr) bool {
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		return fn.Name == "panic"
	case *ast.SelectorExpr:
		if pkg, ok := fn.X.(*ast.Ident); ok {
			name := pkg.Name + "." + fn.Sel.Name
			switch name {
			case "os.Exit", "log.Fatal", "log.Fatalf", "log.Fatalln",
				"runtime.Goexit":
				return true
			}
		}
	}
	return false
}

func (b *builder) stmt(s ast.Stmt) {
	// Any non-loop/switch/select statement consumes a pending label as a
	// plain goto target.
	switch s.(type) {
	case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt,
		*ast.SelectStmt, *ast.LabeledStmt:
	default:
		b.pendingLabel = ""
	}

	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.ReturnStmt:
		b.emit(s)
		b.jump(b.g.Exit)

	case *ast.ExprStmt:
		b.emit(s)
		if call, ok := s.X.(*ast.CallExpr); ok && terminates(call) {
			b.jump(b.g.Exit)
		}

	case *ast.IfStmt:
		if s.Init != nil {
			b.emit(s.Init)
		}
		if b.cur == nil {
			b.cur = b.newBlock("unreachable")
		}
		cond := b.cur
		cond.Cond = s.Cond
		then := b.newBlock("if.then")
		after := b.newBlock("if.after")
		cond.Succs = append(cond.Succs, then)
		b.startBlock(then)
		b.stmt(s.Body)
		b.jump(after)
		if s.Else != nil {
			els := b.newBlock("if.else")
			cond.Succs = append(cond.Succs, els)
			b.startBlock(els)
			b.stmt(s.Else)
			b.jump(after)
		} else {
			cond.Succs = append(cond.Succs, after)
		}
		b.startBlock(after)

	case *ast.ForStmt:
		label := b.pendingLabel
		b.pendingLabel = ""
		if s.Init != nil {
			b.emit(s.Init)
		}
		head := b.newBlock("for.head")
		b.jump(head)
		body := b.newBlock("for.body")
		after := b.newBlock("for.after")
		if s.Cond != nil {
			head.Cond = s.Cond
			head.Succs = append(head.Succs, body, after)
		} else {
			head.Succs = append(head.Succs, body)
		}
		// continue targets the post statement (modeled at body end), break
		// targets after.
		b.breaks = append(b.breaks, loopTarget{label, after})
		post := head
		if s.Post != nil {
			post = b.newBlock("for.post")
			post.Nodes = append(post.Nodes, s.Post)
			post.Succs = append(post.Succs, head)
		}
		b.continues = append(b.continues, loopTarget{label, post})
		b.startBlock(body)
		b.stmt(s.Body)
		b.jump(post)
		b.breaks = b.breaks[:len(b.breaks)-1]
		b.continues = b.continues[:len(b.continues)-1]
		b.startBlock(after)

	case *ast.RangeStmt:
		label := b.pendingLabel
		b.pendingLabel = ""
		head := b.newBlock("range.head")
		b.jump(head)
		// The RangeStmt node itself carries the per-iteration key/value
		// assignment; it lives in the head so each iteration re-executes it.
		head.Nodes = append(head.Nodes, s)
		body := b.newBlock("range.body")
		after := b.newBlock("range.after")
		head.Succs = append(head.Succs, body, after)
		b.breaks = append(b.breaks, loopTarget{label, after})
		b.continues = append(b.continues, loopTarget{label, head})
		b.startBlock(body)
		b.stmt(s.Body)
		b.jump(head)
		b.breaks = b.breaks[:len(b.breaks)-1]
		b.continues = b.continues[:len(b.continues)-1]
		b.startBlock(after)

	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		label := b.pendingLabel
		b.pendingLabel = ""
		var bodyList []ast.Stmt
		switch sw := s.(type) {
		case *ast.SwitchStmt:
			if sw.Init != nil {
				b.emit(sw.Init)
			}
			if sw.Tag != nil {
				b.emit(&ast.ExprStmt{X: sw.Tag})
			}
			bodyList = sw.Body.List
		case *ast.TypeSwitchStmt:
			if sw.Init != nil {
				b.emit(sw.Init)
			}
			b.emit(sw.Assign)
			bodyList = sw.Body.List
		}
		if b.cur == nil {
			b.cur = b.newBlock("unreachable")
		}
		head := b.cur
		after := b.newBlock("switch.after")
		b.breaks = append(b.breaks, loopTarget{label, after})
		var caseBlocks []*Block
		hasDefault := false
		for _, cl := range bodyList {
			cc := cl.(*ast.CaseClause)
			blk := b.newBlock("switch.case")
			if cc.List == nil {
				hasDefault = true
			}
			for _, e := range cc.List {
				blk.Nodes = append(blk.Nodes, &ast.ExprStmt{X: e})
			}
			head.Succs = append(head.Succs, blk)
			caseBlocks = append(caseBlocks, blk)
		}
		if !hasDefault {
			head.Succs = append(head.Succs, after)
		}
		for i, cl := range bodyList {
			cc := cl.(*ast.CaseClause)
			b.startBlock(caseBlocks[i])
			n := len(cc.Body)
			fallsThrough := false
			if n > 0 {
				if br, ok := cc.Body[n-1].(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
					fallsThrough = true
					n--
				}
			}
			b.stmtList(cc.Body[:n])
			if fallsThrough && i+1 < len(caseBlocks) {
				b.jump(caseBlocks[i+1])
			} else {
				b.jump(after)
			}
		}
		b.breaks = b.breaks[:len(b.breaks)-1]
		b.startBlock(after)

	case *ast.SelectStmt:
		label := b.pendingLabel
		b.pendingLabel = ""
		if b.cur == nil {
			b.cur = b.newBlock("unreachable")
		}
		head := b.cur
		after := b.newBlock("select.after")
		b.breaks = append(b.breaks, loopTarget{label, after})
		for _, cl := range s.Body.List {
			cc := cl.(*ast.CommClause)
			blk := b.newBlock("select.case")
			if cc.Comm != nil {
				blk.Nodes = append(blk.Nodes, cc.Comm)
			}
			head.Succs = append(head.Succs, blk)
			b.startBlock(blk)
			b.stmtList(cc.Body)
			b.jump(after)
		}
		if len(s.Body.List) == 0 {
			// select{} blocks forever.
			b.jump(b.g.Exit)
		}
		b.breaks = b.breaks[:len(b.breaks)-1]
		b.startBlock(after)

	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			if t := findTarget(b.breaks, s.Label); t != nil {
				b.emit(s)
				b.jump(t)
			}
		case token.CONTINUE:
			if t := findTarget(b.continues, s.Label); t != nil {
				b.emit(s)
				b.jump(t)
			}
		case token.GOTO:
			if s.Label != nil {
				b.emit(s)
				b.jump(b.labelBlock(s.Label.Name))
			}
		case token.FALLTHROUGH:
			// Handled inside switch building; a stray one is ignored.
		}

	case *ast.LabeledStmt:
		lb := b.labelBlock(s.Label.Name)
		b.jump(lb)
		b.startBlock(lb)
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)

	default:
		// Assign, Decl, IncDec, Send, Go, Defer, Empty: straight-line.
		if _, ok := s.(*ast.EmptyStmt); ok {
			return
		}
		b.emit(s)
	}
}

func findTarget(stack []loopTarget, label *ast.Ident) *Block {
	if label == nil {
		for i := len(stack) - 1; i >= 0; i-- {
			return stack[i].block
		}
		return nil
	}
	for i := len(stack) - 1; i >= 0; i-- {
		if stack[i].label == label.Name {
			return stack[i].block
		}
	}
	return nil
}

func (b *builder) labelBlock(name string) *Block {
	if blk, ok := b.labels[name]; ok {
		return blk
	}
	blk := b.newBlock("label." + name)
	b.labels[name] = blk
	return blk
}

// Dump renders the graph in a stable text form for golden tests: one line
// per block with its kind, abbreviated statements, condition, and successor
// indices.
func (g *Graph) Dump(fset *token.FileSet) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "func %s:\n", g.Name)
	for _, blk := range g.Blocks {
		fmt.Fprintf(&sb, "  b%d %s:", blk.Index, blk.Kind)
		for _, n := range blk.Nodes {
			fmt.Fprintf(&sb, " {%s}", render(fset, n))
		}
		if blk.Cond != nil {
			fmt.Fprintf(&sb, " if {%s}", render(fset, blk.Cond))
		}
		if len(blk.Succs) > 0 {
			sb.WriteString(" ->")
			for _, s := range blk.Succs {
				fmt.Fprintf(&sb, " b%d", s.Index)
			}
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// render prints a node as single-line source, truncated for readability.
func render(fset *token.FileSet, n ast.Node) string {
	var buf bytes.Buffer
	cfg := printer.Config{Mode: printer.RawFormat}
	if err := cfg.Fprint(&buf, fset, n); err != nil {
		return fmt.Sprintf("<%T>", n)
	}
	s := strings.Join(strings.Fields(buf.String()), " ")
	const max = 48
	if len(s) > max {
		s = s[:max] + "…"
	}
	return s
}
