package cfg

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestDumpGolden builds the CFG of every function in the fixture file and
// compares the block/edge structure against the committed golden dump.
// Regenerate with UPDATE_GOLDEN=1 go test ./internal/analysis/cfg.
func TestDumpGolden(t *testing.T) {
	src := filepath.Join("testdata", "funcs.go")
	golden := filepath.Join("testdata", "funcs.golden")

	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, src, nil, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	for _, d := range f.Decls {
		fd, ok := d.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		sb.WriteString(New(FuncName(fd), fd.Body).Dump(fset))
		sb.WriteString("\n")
	}
	got := sb.String()

	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("updated %s", golden)
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (run with UPDATE_GOLDEN=1): %v", err)
	}
	if got != string(want) {
		t.Errorf("CFG dump drifted from golden.\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestStructure asserts structural invariants the analyzers rely on, beyond
// what the golden dump pins: branch blocks have exactly two successors with
// Succs[0] the true edge, returns edge to Exit, and every block is
// reachable or explicitly dead.
func TestStructure(t *testing.T) {
	const src = `package p
func f(a, b int) int {
	if a > b {
		return a
	}
	for i := 0; i < b; i++ {
		if i == 3 {
			break
		}
		a += i
	}
	return b
}`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "s.go", src, 0)
	if err != nil {
		t.Fatal(err)
	}
	fd := f.Decls[0].(*ast.FuncDecl)
	g := New("f", fd.Body)

	if g.Entry != g.Blocks[0] {
		t.Fatalf("entry is not Blocks[0]")
	}
	if len(g.Exit.Succs) != 0 || len(g.Exit.Nodes) != 0 {
		t.Fatalf("exit block must be empty and terminal")
	}
	condBlocks := 0
	for _, b := range g.Blocks {
		if b.Cond != nil {
			condBlocks++
			if len(b.Succs) != 2 {
				t.Errorf("b%d has Cond but %d successors", b.Index, len(b.Succs))
			}
		}
		for _, n := range b.Nodes {
			if _, ok := n.(*ast.ReturnStmt); ok {
				found := false
				for _, s := range b.Succs {
					if s == g.Exit {
						found = true
					}
				}
				if !found {
					t.Errorf("b%d holds a return but does not edge to exit", b.Index)
				}
			}
		}
	}
	if condBlocks != 3 { // a > b, loop cond, i == 3
		t.Errorf("want 3 conditional blocks, got %d", condBlocks)
	}
	if !reachable(g, g.Exit) {
		t.Errorf("exit unreachable from entry")
	}
}

// TestForwardMay checks the engine on a tiny gen/kill problem: a fact
// generated before a branch survives to exit only on the path that does not
// kill it, and an edge function can kill a fact on the true edge.
func TestForwardMay(t *testing.T) {
	const src = `package p
func f(c bool) {
	gen()
	if c {
		kill()
	}
	done()
}`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "s.go", src, 0)
	if err != nil {
		t.Fatal(err)
	}
	g := New("f", f.Decls[0].(*ast.FuncDecl).Body)

	type fact struct{ name string }
	fct := &fact{"r"}
	callName := func(n ast.Node) string {
		es, ok := n.(*ast.ExprStmt)
		if !ok {
			return ""
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok {
			return ""
		}
		id, ok := call.Fun.(*ast.Ident)
		if !ok {
			return ""
		}
		return id.Name
	}
	transfer := func(b *Block, in Set[*fact]) Set[*fact] {
		out := in.Clone()
		for _, n := range b.Nodes {
			switch callName(n) {
			case "gen":
				out[fct] = true
			case "kill":
				delete(out, fct)
			}
		}
		return out
	}

	res := Forward(g, transfer, nil)
	if !res.AtExit(g)[fct] {
		t.Errorf("fact should may-reach exit via the c==false path")
	}

	// Now kill the fact on the true edge of every conditional: the only
	// path keeping it goes through kill() anyway, so it still may-reach
	// exit via the false path; killing on the false edge instead removes
	// every clean path.
	edgeKillFalse := func(from, to *Block, out Set[*fact]) Set[*fact] {
		if from.Cond != nil && len(from.Succs) == 2 && to == from.Succs[1] {
			o := out.Clone()
			delete(o, fct)
			return o
		}
		return out
	}
	res = Forward(g, transfer, edgeKillFalse)
	if res.AtExit(g)[fct] {
		t.Errorf("fact should not reach exit: false edge kills it, true path calls kill()")
	}
}

func reachable(g *Graph, target *Block) bool {
	seen := map[*Block]bool{}
	var walk func(b *Block) bool
	walk = func(b *Block) bool {
		if b == target {
			return true
		}
		if seen[b] {
			return false
		}
		seen[b] = true
		for _, s := range b.Succs {
			if walk(s) {
				return true
			}
		}
		return false
	}
	return walk(g.Entry)
}
