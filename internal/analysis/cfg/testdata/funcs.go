// Package funcs is the CFG builder's golden fixture: each function
// exercises one control-flow shape the builder must model. The golden dump
// (funcs.golden) pins the block/edge structure; regenerate with
// UPDATE_GOLDEN=1 after intentional builder changes.
package funcs

import "context"

func ifElse(a int) int {
	if a > 0 {
		a++
	} else {
		a--
	}
	return a
}

func earlyReturn(err error) error {
	if err != nil {
		return err
	}
	work()
	return nil
}

func forLoop(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		if i == 7 {
			continue
		}
		if i == 9 {
			break
		}
		s += i
	}
	return s
}

func rangeLoop(xs []int) int {
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}

func switchFall(k int) string {
	switch k {
	case 1:
		return "one"
	case 2:
		work()
		fallthrough
	case 3:
		return "few"
	default:
		return "many"
	}
}

func selectLoop(ctx context.Context, ch chan int) int {
	total := 0
	for {
		select {
		case v := <-ch:
			total += v
		case <-ctx.Done():
			return total
		}
	}
}

func gotoRetry(n int) int {
retry:
	n--
	if n > 0 {
		goto retry
	}
	return n
}

func labeledBreak(grid [][]int) int {
outer:
	for _, row := range grid {
		for _, v := range row {
			if v < 0 {
				break outer
			}
		}
	}
	return 0
}

func deferredCleanup(open func() (func(), error)) error {
	release, err := open()
	if err != nil {
		return err
	}
	defer release()
	work()
	return nil
}

func panics(n int) int {
	if n < 0 {
		panic("negative")
	}
	return n
}

func work() {}
