// Package waitgroup flags the three sync.WaitGroup misuse patterns that
// break fan-out kernels:
//
//  1. wg.Add called inside the goroutine it accounts for — Wait can run
//     before the goroutine is scheduled, returning early:
//
//     go func() { wg.Add(1); ... }() // BAD
//
//  2. wg.Done called as a plain statement instead of deferred — a panic
//     (or early return added later) between the work and Done deadlocks
//     Wait:
//
//     go func() { work(); wg.Done() }() // BAD: defer wg.Done()
//
//     As a special case, an Add immediately followed by a goroutine whose
//     body never calls Done on the same WaitGroup is reported at the go
//     statement.
//
//  3. A sync.WaitGroup copied by value — a parameter of type
//     sync.WaitGroup, or an assignment copying one — so Done decrements a
//     copy and Wait blocks forever. (go vet's copylocks catches some of
//     these; this check names the WaitGroup-specific failure.)
package waitgroup

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis/framework"
)

// Analyzer is the waitgroup check.
var Analyzer = &framework.Analyzer{
	Name: "waitgroup",
	Doc:  "flags sync.WaitGroup misuse: Add inside the goroutine, non-deferred Done, copies by value",
	Run:  run,
}

func run(pass *framework.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.GoStmt:
				if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
					checkGoroutineBody(pass, lit)
				}
			case *ast.BlockStmt:
				checkAddThenGo(pass, s)
			case *ast.FuncDecl:
				checkParams(pass, s.Type)
			case *ast.FuncLit:
				checkParams(pass, s.Type)
			case *ast.AssignStmt:
				checkValueCopy(pass, s)
			}
			return true
		})
	}
	return nil
}

// checkGoroutineBody flags wg.Add inside the goroutine and non-deferred
// wg.Done. Nested function literals get their own visit via the outer
// Inspect, so only this body's direct statements are considered.
func checkGoroutineBody(pass *framework.Pass, lit *ast.FuncLit) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if inner, ok := n.(*ast.FuncLit); ok && inner != lit {
			return false
		}
		switch s := n.(type) {
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok {
				switch wgMethod(pass, call) {
				case "Add":
					pass.Reportf(call.Pos(), "wg.Add inside the goroutine it accounts for; Wait may return before this runs — call Add before the go statement")
				case "Done":
					pass.Reportf(call.Pos(), "wg.Done called without defer; a panic before this line deadlocks Wait — use defer wg.Done() as the first statement")
				}
			}
		}
		return true
	})
}

// checkAddThenGo flags `wg.Add(1); go func(){...}()` pairs where the
// goroutine body never calls Done on the same WaitGroup.
func checkAddThenGo(pass *framework.Pass, block *ast.BlockStmt) {
	for i := 0; i+1 < len(block.List); i++ {
		es, ok := block.List[i].(*ast.ExprStmt)
		if !ok {
			continue
		}
		addCall, ok := es.X.(*ast.CallExpr)
		if !ok || wgMethod(pass, addCall) != "Add" {
			continue
		}
		gs, ok := block.List[i+1].(*ast.GoStmt)
		if !ok {
			continue
		}
		lit, ok := gs.Call.Fun.(*ast.FuncLit)
		if !ok {
			continue
		}
		wgObj := receiverObj(pass, addCall)
		if wgObj == nil {
			continue
		}
		if !callsDoneOn(pass, lit, wgObj) {
			pass.Reportf(gs.Pos(), "goroutine started after %s.Add never calls %s.Done; Wait will block forever", wgObj.Name(), wgObj.Name())
		}
	}
}

func callsDoneOn(pass *framework.Pass, lit *ast.FuncLit, wgObj types.Object) bool {
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || wgMethod(pass, call) != "Done" {
			return true
		}
		if receiverObj(pass, call) == wgObj {
			found = true
			return false
		}
		return true
	})
	return found
}

func checkParams(pass *framework.Pass, ft *ast.FuncType) {
	if ft.Params == nil {
		return
	}
	for _, field := range ft.Params.List {
		t := pass.TypeOf(field.Type)
		if t == nil {
			continue
		}
		if _, ptr := t.Underlying().(*types.Pointer); ptr {
			continue // *sync.WaitGroup is the correct form
		}
		if isWaitGroup(t) {
			pass.Reportf(field.Pos(), "sync.WaitGroup passed by value; Done decrements a copy and Wait blocks forever — pass *sync.WaitGroup")
		}
	}
}

func checkValueCopy(pass *framework.Pass, s *ast.AssignStmt) {
	for _, rhs := range s.Rhs {
		switch rhs.(type) {
		case *ast.Ident, *ast.SelectorExpr:
			if isWaitGroup(pass.TypeOf(rhs)) {
				pass.Reportf(rhs.Pos(), "sync.WaitGroup copied by value; the copy's counter is independent — use a pointer")
			}
		}
	}
}

// wgMethod returns "Add"/"Done"/"Wait" when call is that method on a
// sync.WaitGroup, else "".
func wgMethod(pass *framework.Pass, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	switch sel.Sel.Name {
	case "Add", "Done", "Wait":
	default:
		return ""
	}
	if !isWaitGroup(pass.TypeOf(sel.X)) {
		return ""
	}
	return sel.Sel.Name
}

// receiverObj resolves the root variable of the method receiver, so Done
// calls can be matched to the WaitGroup their Add incremented.
func receiverObj(pass *framework.Pass, call *ast.CallExpr) types.Object {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	switch x := sel.X.(type) {
	case *ast.Ident:
		return pass.ObjectOf(x)
	case *ast.SelectorExpr:
		return pass.ObjectOf(x.Sel)
	}
	return nil
}

func isWaitGroup(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Path() == "sync" && n.Obj().Name() == "WaitGroup"
}
