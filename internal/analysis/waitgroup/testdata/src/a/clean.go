// Fixture: correct WaitGroup usage — none of these may be flagged.
package a

import "sync"

func correctFanOut(items []int) {
	var wg sync.WaitGroup
	for _, it := range items {
		wg.Add(1)
		go func(it int) {
			defer wg.Done()
			_ = it * 2
		}(it)
	}
	wg.Wait()
}

func addBatchBeforeLoop(n int) {
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func() {
			defer wg.Done()
		}()
	}
	wg.Wait()
}

func passedByPointer(wg *sync.WaitGroup) {
	defer wg.Done()
}

func fieldReceiver() {
	type pool struct {
		wg sync.WaitGroup
	}
	p := &pool{}
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
	}()
	p.wg.Wait()
}

func suppressedDone(ready *sync.WaitGroup) {
	go func() {
		//lint:ignore waitgroup audited: Done marks readiness mid-goroutine by design
		ready.Done()
		select {}
	}()
}
