// Fixture: WaitGroup misuse that waitgroup must flag.
package a

import "sync"

func addInsideGoroutine(items []int) {
	var wg sync.WaitGroup
	for range items {
		go func() {
			wg.Add(1) // want "wg.Add inside the goroutine"
			defer wg.Done()
		}()
	}
	wg.Wait()
}

func doneNotDeferred(items []int) {
	var wg sync.WaitGroup
	for _, it := range items {
		wg.Add(1)
		go func(it int) {
			_ = it * 2
			wg.Done() // want "Done called without defer"
		}(it)
	}
	wg.Wait()
}

func missingDone() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // want "never calls wg.Done"
		println("working")
	}()
	wg.Wait()
}

func passedByValue(wg sync.WaitGroup) { // want "passed by value"
	wg.Done()
}

func copiedByValue() {
	var wg sync.WaitGroup
	wg.Add(1)
	wg2 := wg // want "copied by value"
	go func() {
		defer wg2.Done()
	}()
	wg.Wait()
}
