package waitgroup_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/waitgroup"
)

func TestWaitGroup(t *testing.T) {
	analysistest.Run(t, waitgroup.Analyzer, "a")
}
