package mercator

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
)

func TestProjectOrigin(t *testing.T) {
	p := Project(LngLat{0, 0})
	if !p.NearEq(geom.Pt(0, 0), 1e-9) {
		t.Errorf("Project(0,0) = %v, want origin", p)
	}
}

func TestProjectKnownPoint(t *testing.T) {
	// 180°E maps to half the world circumference.
	p := Project(LngLat{Lng: 180, Lat: 0})
	want := math.Pi * EarthRadius
	if math.Abs(p.X-want) > 1e-6 {
		t.Errorf("x at 180E = %v, want %v", p.X, want)
	}
	// The mercator world is square: y at MaxLatitude equals x at 180E.
	p = Project(LngLat{Lng: 0, Lat: MaxLatitude})
	if math.Abs(p.Y-want) > 1 {
		t.Errorf("y at max lat = %v, want %v", p.Y, want)
	}
}

func TestProjectClampsLatitude(t *testing.T) {
	a := Project(LngLat{0, 89.9})
	b := Project(LngLat{0, MaxLatitude})
	if a.Y != b.Y {
		t.Errorf("latitudes beyond the bound should clamp: %v vs %v", a.Y, b.Y)
	}
}

func TestProjectUnprojectRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 1000; i++ {
		ll := LngLat{
			Lng: rng.Float64()*360 - 180,
			Lat: rng.Float64()*160 - 80,
		}
		got := Unproject(Project(ll))
		if math.Abs(got.Lng-ll.Lng) > 1e-9 || math.Abs(got.Lat-ll.Lat) > 1e-9 {
			t.Fatalf("round trip %v -> %v", ll, got)
		}
	}
}

func TestMetersPerDegreeLng(t *testing.T) {
	// At the equator: ~111.3 km per degree.
	if got := MetersPerDegreeLng(0); math.Abs(got-111319.5) > 1 {
		t.Errorf("meters/degree at equator = %v, want ~111319.5", got)
	}
	// At 60°: exactly half.
	if got := MetersPerDegreeLng(60); math.Abs(got-111319.5/2) > 1 {
		t.Errorf("meters/degree at 60N = %v, want ~55659.7", got)
	}
}

func TestGroundResolution(t *testing.T) {
	if g := GroundResolution(0); g != 1 {
		t.Errorf("ground resolution at equator = %v, want 1", g)
	}
	if g := GroundResolution(60); math.Abs(g-0.5) > 1e-12 {
		t.Errorf("ground resolution at 60N = %v, want 0.5", g)
	}
}

func TestMetersPerPixel(t *testing.T) {
	// Zoom 0 at the equator: whole world / 256 pixels.
	want := 2 * math.Pi * EarthRadius / 256
	if got := MetersPerPixel(0, 0); math.Abs(got-want) > 1e-6 {
		t.Errorf("m/px at z0 = %v, want %v", got, want)
	}
	// Every zoom level halves it.
	if got := MetersPerPixel(0, 1); math.Abs(got-want/2) > 1e-6 {
		t.Errorf("m/px at z1 = %v, want %v", got, want/2)
	}
}

func TestTileAt(t *testing.T) {
	// Zoom 0 has a single tile.
	if tl := TileAt(LngLat{-73.98, 40.75}, 0); tl != (Tile{0, 0, 0}) {
		t.Errorf("z0 tile = %v, want 0/0/0", tl)
	}
	// Zoom 1: NYC is in the northwest quadrant (x=0, y=0).
	if tl := TileAt(LngLat{-73.98, 40.75}, 1); tl != (Tile{1, 0, 0}) {
		t.Errorf("z1 tile = %v, want 1/0/0", tl)
	}
	// Sydney: southeast quadrant.
	if tl := TileAt(LngLat{151.2, -33.9}, 1); tl != (Tile{1, 1, 1}) {
		t.Errorf("z1 Sydney tile = %v, want 1/1/1", tl)
	}
}

func TestTileBBoxContainsItsPoint(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 500; i++ {
		ll := LngLat{rng.Float64()*360 - 180, rng.Float64()*160 - 80}
		z := rng.Intn(18)
		tl := TileAt(ll, z)
		if !tl.BBox().Contains(Project(ll)) {
			t.Fatalf("tile %v does not contain %v", tl, ll)
		}
	}
}

func TestTileChildrenParent(t *testing.T) {
	tl := Tile{5, 9, 13}
	for _, c := range tl.Children() {
		if c.Parent() != tl {
			t.Errorf("child %v parent = %v, want %v", c, c.Parent(), tl)
		}
		if !tl.BBox().ContainsBBox(c.BBox().Expand(-1e-6)) {
			t.Errorf("child %v bbox not inside parent", c)
		}
	}
	if (Tile{0, 0, 0}).Parent() != (Tile{0, 0, 0}) {
		t.Error("zoom-0 parent should be itself")
	}
}

func TestTilesCovering(t *testing.T) {
	// The whole world at zoom 1 is 4 tiles.
	world := geom.BBox{
		MinX: -math.Pi * EarthRadius, MinY: -math.Pi * EarthRadius,
		MaxX: math.Pi * EarthRadius, MaxY: math.Pi * EarthRadius,
	}
	tiles := TilesCovering(world, 1)
	if len(tiles) != 4 {
		t.Errorf("world z1 coverage = %d tiles, want 4", len(tiles))
	}
	if TilesCovering(geom.EmptyBBox(), 3) != nil {
		t.Error("empty box should cover no tiles")
	}
	// A single point box covers exactly one tile.
	p := Project(LngLat{-73.98, 40.75})
	one := TilesCovering(geom.BBox{MinX: p.X, MinY: p.Y, MaxX: p.X, MaxY: p.Y}, 12)
	if len(one) != 1 {
		t.Errorf("point coverage = %d tiles, want 1", len(one))
	}
	if one[0] != TileAt(LngLat{-73.98, 40.75}, 12) {
		t.Errorf("point coverage tile = %v, want %v", one[0], TileAt(LngLat{-73.98, 40.75}, 12))
	}
}

func TestTileString(t *testing.T) {
	if s := (Tile{3, 2, 1}).String(); s != "3/2/1" {
		t.Errorf("String = %q, want 3/2/1", s)
	}
}

func TestNYCBounds(t *testing.T) {
	b := NYCBounds()
	if b.IsEmpty() {
		t.Fatal("NYC bounds should not be empty")
	}
	// NYC is roughly 47km x 60km in mercator meters (stretched by ~1/cos40.7).
	if b.Width() < 40000 || b.Width() > 80000 {
		t.Errorf("NYC width = %v m, want 40-80 km", b.Width())
	}
	if !b.Contains(Project(LngLat{-73.98, 40.75})) {
		t.Error("midtown should be inside NYC bounds")
	}
}
