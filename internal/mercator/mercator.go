// Package mercator implements the spherical Web-Mercator projection
// (EPSG:3857) and the slippy-map tile arithmetic Urbane's map view uses.
//
// Raster Join's error bound ε is expressed in ground meters; converting it
// to a canvas resolution requires the meters-per-pixel scale at the data's
// latitude, which this package provides.
package mercator

import (
	"fmt"
	"math"

	"repro/internal/geom"
)

// EarthRadius is the WGS84 spherical radius in meters used by EPSG:3857.
const EarthRadius = 6378137.0

// MaxLatitude is the latitude bound of the square Web-Mercator world.
const MaxLatitude = 85.05112877980659

// LngLat is a geographic coordinate in degrees.
type LngLat struct {
	Lng, Lat float64
}

// Project converts a geographic coordinate to Web-Mercator meters.
// Latitudes are clamped to ±MaxLatitude.
func Project(ll LngLat) geom.Point {
	lat := clamp(ll.Lat, -MaxLatitude, MaxLatitude)
	x := EarthRadius * ll.Lng * math.Pi / 180
	y := EarthRadius * math.Log(math.Tan(math.Pi/4+lat*math.Pi/360))
	return geom.Point{X: x, Y: y}
}

// Unproject converts Web-Mercator meters back to a geographic coordinate.
func Unproject(p geom.Point) LngLat {
	lng := p.X / EarthRadius * 180 / math.Pi
	lat := (2*math.Atan(math.Exp(p.Y/EarthRadius)) - math.Pi/2) * 180 / math.Pi
	return LngLat{Lng: lng, Lat: lat}
}

// ProjectBBox projects the geographic box spanned by two corners.
func ProjectBBox(min, max LngLat) geom.BBox {
	a := Project(min)
	b := Project(max)
	return geom.NewBBox(a.X, a.Y, b.X, b.Y)
}

// MetersPerDegreeLng returns ground meters per degree of longitude at the
// given latitude (degrees).
func MetersPerDegreeLng(lat float64) float64 {
	return EarthRadius * math.Pi / 180 * math.Cos(lat*math.Pi/180)
}

// GroundResolution returns ground meters per mercator meter at the given
// latitude: mercator distances are stretched by 1/cos(lat), so one mercator
// meter covers cos(lat) ground meters.
func GroundResolution(lat float64) float64 {
	return math.Cos(lat * math.Pi / 180)
}

// MetersPerPixel returns ground meters per pixel at the given latitude and
// slippy-map zoom level with 256-pixel tiles.
func MetersPerPixel(lat float64, zoom int) float64 {
	return 2 * math.Pi * EarthRadius * GroundResolution(lat) / (256 * math.Exp2(float64(zoom)))
}

// Tile addresses a slippy-map tile.
type Tile struct {
	Z, X, Y int
}

// String implements fmt.Stringer in z/x/y form.
func (t Tile) String() string { return fmt.Sprintf("%d/%d/%d", t.Z, t.X, t.Y) }

// TileAt returns the tile containing the geographic coordinate at a zoom
// level. X grows east, Y grows south (slippy-map convention).
func TileAt(ll LngLat, zoom int) Tile {
	n := math.Exp2(float64(zoom))
	lat := clamp(ll.Lat, -MaxLatitude, MaxLatitude) * math.Pi / 180
	x := int(math.Floor((ll.Lng + 180) / 360 * n))
	y := int(math.Floor((1 - math.Log(math.Tan(lat)+1/math.Cos(lat))/math.Pi) / 2 * n))
	last := int(n) - 1
	return Tile{Z: zoom, X: clampInt(x, 0, last), Y: clampInt(y, 0, last)}
}

// BBox returns the tile's extent in Web-Mercator meters.
func (t Tile) BBox() geom.BBox {
	n := math.Exp2(float64(t.Z))
	world := 2 * math.Pi * EarthRadius
	size := world / n
	minX := -world/2 + float64(t.X)*size
	maxY := world/2 - float64(t.Y)*size
	return geom.BBox{MinX: minX, MinY: maxY - size, MaxX: minX + size, MaxY: maxY}
}

// Children returns the four tiles at the next zoom level covering t.
func (t Tile) Children() [4]Tile {
	return [4]Tile{
		{t.Z + 1, 2 * t.X, 2 * t.Y},
		{t.Z + 1, 2*t.X + 1, 2 * t.Y},
		{t.Z + 1, 2 * t.X, 2*t.Y + 1},
		{t.Z + 1, 2*t.X + 1, 2*t.Y + 1},
	}
}

// Parent returns the tile one zoom level up containing t. The parent of a
// zoom-0 tile is itself.
func (t Tile) Parent() Tile {
	if t.Z == 0 {
		return t
	}
	return Tile{t.Z - 1, t.X / 2, t.Y / 2}
}

// TilesCovering returns all tiles at the zoom level whose extent intersects
// the mercator box b.
func TilesCovering(b geom.BBox, zoom int) []Tile {
	if b.IsEmpty() {
		return nil
	}
	n := math.Exp2(float64(zoom))
	world := 2 * math.Pi * EarthRadius
	size := world / n
	toIdx := func(v float64) int {
		return clampInt(int(math.Floor((v+world/2)/size)), 0, int(n)-1)
	}
	toIdxY := func(v float64) int {
		return clampInt(int(math.Floor((world/2-v)/size)), 0, int(n)-1)
	}
	x0, x1 := toIdx(b.MinX), toIdx(b.MaxX)
	y0, y1 := toIdxY(b.MaxY), toIdxY(b.MinY)
	var tiles []Tile
	for y := y0; y <= y1; y++ {
		for x := x0; x <= x1; x++ {
			tiles = append(tiles, Tile{zoom, x, y})
		}
	}
	return tiles
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// NYC is the geographic bounding box of New York City used throughout the
// reproduction (matching the paper's primary workload).
var NYC = struct {
	Min, Max LngLat
	// CenterLat is used for meter/pixel conversions over the city.
	CenterLat float64
}{
	Min:       LngLat{Lng: -74.2591, Lat: 40.4774},
	Max:       LngLat{Lng: -73.7004, Lat: 40.9176},
	CenterLat: 40.7,
}

// NYCBounds returns New York City's extent in Web-Mercator meters.
func NYCBounds() geom.BBox { return ProjectBBox(NYC.Min, NYC.Max) }
