package data

import (
	"fmt"
	"math"
	"sync"
)

// DefaultBlockSize is the number of points per block a PointSource exposes
// by default: large enough that per-block overhead (zone map checks, draw
// call setup) amortizes away, small enough that a zone map prunes usefully
// on clustered data. 8K points ≈ 256 KiB per decoded coordinate pair.
const DefaultBlockSize = 8192

// ZoneCol is the zone-map entry for one float column within one block:
// the min/max over the block's non-NaN values plus a NaN marker. An empty
// or all-NaN column has Min=+Inf, Max=-Inf, which fails every interval
// overlap test — correct, since NaN fails every filter comparison too.
type ZoneCol struct {
	Min, Max float64
	HasNaN   bool
}

// Observe folds one value into the zone entry.
func (z *ZoneCol) Observe(v float64) {
	if math.IsNaN(v) {
		z.HasNaN = true
		return
	}
	if v < z.Min {
		z.Min = v
	}
	if v > z.Max {
		z.Max = v
	}
}

// EmptyZoneCol returns the identity zone entry (Min=+Inf, Max=-Inf).
func EmptyZoneCol() ZoneCol {
	return ZoneCol{Min: math.Inf(1), Max: math.Inf(-1)}
}

// Zone is one block's zone map: per-column min/max for the coordinates,
// the time column, and every attribute. Query layers test filter and
// window predicates against it to skip blocks that provably cannot match.
type Zone struct {
	X, Y ZoneCol
	// MinT, MaxT bound the block's timestamps (0,0 when the source has no
	// time column).
	MinT, MaxT int64
	// Attr is parallel to the source's AttrNames().
	Attr []ZoneCol
}

// Block is one decoded run of points, addressed by absolute point index:
// the values of point i (Base <= i < Base+Len()) sit at local offset
// i-Base. Attr is parallel to the source's AttrNames(). T is nil when the
// source has no time column.
type Block struct {
	Base int
	X, Y []float64
	T    []int64
	Attr [][]float64
}

// Len returns the number of points in the block.
func (b *Block) Len() int { return len(b.X) }

// XY returns the coordinates of absolute point index i.
func (b *Block) XY(i int) (float64, float64) {
	j := i - b.Base
	return b.X[j], b.Y[j]
}

// Bytes returns the decoded footprint of the block, used by byte-bounded
// block caches.
func (b *Block) Bytes() int64 {
	n := int64(len(b.X)+len(b.Y)) * 8
	n += int64(len(b.T)) * 8
	for _, c := range b.Attr {
		n += int64(len(c)) * 8
	}
	return n
}

// PointSource is the block-iterator read path for point data: a sequence
// of fixed-size blocks with per-block zone maps, consumed by the raster
// joiners, the cube and geoblocks builds, and the streaming loader. The
// in-RAM PointSet adapts to it via Source(); the columnar segment store
// (internal/segment) implements it over an on-disk layout so data sets can
// exceed RAM.
//
// Implementations must be safe for concurrent readers, and a source's
// contents must be immutable for its lifetime (Stamp identifies the data
// for caches, exactly like PointSet.Stamp).
type PointSource interface {
	// Name identifies the data set.
	Name() string
	// Len returns the total number of points.
	Len() int
	// Stamp returns a process-unique identity for the data (see
	// PointSet.Stamp).
	Stamp() uint64
	// AttrNames returns the attribute column names in storage order; every
	// Block's Attr slice is parallel to it.
	AttrNames() []string
	// HasTime reports whether the source carries a time column.
	HasTime() bool
	// TimeSorted reports whether timestamps are globally non-decreasing,
	// enabling binary-search time windows.
	TimeSorted() bool
	// NumBlocks returns the number of blocks.
	NumBlocks() int
	// BlockSpan returns the absolute point-index range [lo, hi) of block b.
	BlockSpan(b int) (lo, hi int)
	// Zone returns block b's zone map without decoding the block.
	Zone(b int) Zone
	// Block decodes block b. The returned block is shared and must not be
	// mutated; out-of-core sources may evict it from their cache after the
	// caller is done, so callers must not retain it across blocks.
	Block(b int) (*Block, error)
}

// Slabber is an optional PointSource fast path: sources whose storage is
// already contiguous in RAM can serve one zero-copy Block spanning an
// arbitrary index range, letting scan loops draw a maximal run of
// surviving blocks in a single draw instead of one per block.
type Slabber interface {
	Slab(lo, hi int) (*Block, bool)
}

// NewStamp issues a fresh process-unique data identity from the same
// namespace as PointSet.Stamp, for PointSource implementations that are
// not backed by a PointSet.
func NewStamp() uint64 { return pointSetStamps.Add(1) }

// AttrIndex returns the position of the named attribute in the source's
// column order, or -1 when absent.
func AttrIndex(src PointSource, name string) int {
	for i, n := range src.AttrNames() {
		if n == name {
			return i
		}
	}
	return -1
}

// setSource adapts an in-RAM PointSet to the PointSource interface:
// blocks are zero-copy sub-slices of the set's columns, zone maps are
// computed once on first use, and Slab serves arbitrary contiguous runs.
type setSource struct {
	ps        *PointSet
	attrNames []string
	sorted    bool

	zonesOnce sync.Once
	zones     []Zone
}

// Source returns the PointSource view of the point set, computed on first
// call and cached. The columns must not be mutated afterwards (the same
// immutability contract Stamp already imposes); mutators like SortByTime
// invalidate the cached view.
func (ps *PointSet) Source() PointSource {
	if s := ps.source.Load(); s != nil {
		return s
	}
	s := &setSource{ps: ps, attrNames: ps.AttrNames(), sorted: timeSorted(ps.T)}
	if ps.source.CompareAndSwap(nil, s) {
		return s
	}
	return ps.source.Load()
}

// timeSorted reports whether t is non-decreasing.
func timeSorted(t []int64) bool {
	for i := 1; i < len(t); i++ {
		if t[i-1] > t[i] {
			return false
		}
	}
	return true
}

func (s *setSource) Name() string        { return s.ps.Name }
func (s *setSource) Len() int            { return s.ps.Len() }
func (s *setSource) Stamp() uint64       { return s.ps.Stamp() }
func (s *setSource) AttrNames() []string { return s.attrNames }
func (s *setSource) HasTime() bool       { return s.ps.T != nil }
func (s *setSource) TimeSorted() bool    { return s.ps.T != nil && s.sorted }

func (s *setSource) NumBlocks() int {
	return (s.ps.Len() + DefaultBlockSize - 1) / DefaultBlockSize
}

func (s *setSource) BlockSpan(b int) (lo, hi int) {
	lo = b * DefaultBlockSize
	hi = lo + DefaultBlockSize
	if hi > s.ps.Len() {
		hi = s.ps.Len()
	}
	return lo, hi
}

func (s *setSource) Zone(b int) Zone {
	s.zonesOnce.Do(s.buildZones)
	return s.zones[b]
}

func (s *setSource) buildZones() {
	nb := s.NumBlocks()
	s.zones = make([]Zone, nb)
	for b := 0; b < nb; b++ {
		lo, hi := s.BlockSpan(b)
		s.zones[b] = BuildZone(s.ps, lo, hi)
	}
}

// BuildZone computes the zone map of points [lo, hi) of an in-RAM set.
func BuildZone(ps *PointSet, lo, hi int) Zone {
	z := Zone{X: EmptyZoneCol(), Y: EmptyZoneCol(), Attr: make([]ZoneCol, len(ps.Attrs))}
	for a := range z.Attr {
		z.Attr[a] = EmptyZoneCol()
	}
	for i := lo; i < hi; i++ {
		z.X.Observe(ps.X[i])
		z.Y.Observe(ps.Y[i])
		for a := range ps.Attrs {
			z.Attr[a].Observe(ps.Attrs[a].Values[i])
		}
	}
	if ps.T != nil && hi > lo {
		z.MinT, z.MaxT = ps.T[lo], ps.T[lo]
		for _, t := range ps.T[lo+1 : hi] {
			if t < z.MinT {
				z.MinT = t
			}
			if t > z.MaxT {
				z.MaxT = t
			}
		}
	}
	return z
}

func (s *setSource) Block(b int) (*Block, error) {
	lo, hi := s.BlockSpan(b)
	blk, _ := s.Slab(lo, hi)
	return blk, nil
}

// Slab implements Slabber: a zero-copy block over [lo, hi).
func (s *setSource) Slab(lo, hi int) (*Block, bool) {
	ps := s.ps
	blk := &Block{Base: lo, X: ps.X[lo:hi], Y: ps.Y[lo:hi]}
	if ps.T != nil {
		blk.T = ps.T[lo:hi]
	}
	if len(ps.Attrs) > 0 {
		blk.Attr = make([][]float64, len(ps.Attrs))
		for a := range ps.Attrs {
			blk.Attr[a] = ps.Attrs[a].Values[lo:hi]
		}
	}
	return blk, true
}

// WalkBlocks decodes each block of src overlapping [lo, hi) in order and
// invokes fn with the block and the clipped absolute range [s, e). Offline
// builds (cube, geoblocks) use it to stream a source without assuming the
// data is resident; a Slabber source is served one zero-copy run.
func WalkBlocks(src PointSource, lo, hi int, fn func(blk *Block, s, e int) error) error {
	if hi > src.Len() {
		hi = src.Len()
	}
	if lo >= hi {
		return nil
	}
	if sl, ok := src.(Slabber); ok {
		if blk, ok := sl.Slab(lo, hi); ok {
			return fn(blk, lo, hi)
		}
	}
	for b := 0; b < src.NumBlocks(); b++ {
		blo, bhi := src.BlockSpan(b)
		if bhi <= lo {
			continue
		}
		if blo >= hi {
			break
		}
		blk, err := src.Block(b)
		if err != nil {
			return fmt.Errorf("data: decoding block %d of %q: %w", b, src.Name(), err)
		}
		s, e := blo, bhi
		if s < lo {
			s = lo
		}
		if e > hi {
			e = hi
		}
		if err := fn(blk, s, e); err != nil {
			return err
		}
	}
	return nil
}
