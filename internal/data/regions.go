package data

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync/atomic"

	"repro/internal/geom"
)

// Region is one polygonal aggregation unit R(id, geometry).
type Region struct {
	ID   int
	Name string
	Poly geom.Polygon
}

// RegionSet is a named collection of regions — a neighborhood layer, a
// census-tract layer, or an ad-hoc user-drawn selection.
type RegionSet struct {
	Name    string
	Regions []Region

	stamp atomic.Uint64
}

// regionSetStamps issues process-unique RegionSet identities; 0 is reserved
// for "not yet stamped".
var regionSetStamps atomic.Uint64

// Stamp returns a process-unique identity for this region set, assigned
// lazily on first call. Caches keyed by geometry use it instead of the Name
// (names can be reused across re-registered layers) — callers must treat
// the Regions slice as immutable once the set is stamped.
func (rs *RegionSet) Stamp() uint64 {
	if s := rs.stamp.Load(); s != 0 {
		return s
	}
	s := regionSetStamps.Add(1)
	if rs.stamp.CompareAndSwap(0, s) {
		return s
	}
	return rs.stamp.Load()
}

// Len returns the number of regions.
func (rs *RegionSet) Len() int { return len(rs.Regions) }

// Bounds returns the union of all region bounding boxes.
func (rs *RegionSet) Bounds() geom.BBox {
	b := geom.EmptyBBox()
	for _, r := range rs.Regions {
		b = b.Union(r.Poly.BBox())
	}
	return b
}

// VertexCount returns the total vertex count across all regions — the
// polygon-complexity axis of the paper's evaluation.
func (rs *RegionSet) VertexCount() int {
	n := 0
	for _, r := range rs.Regions {
		n += r.Poly.VertexCount()
	}
	return n
}

// ByID returns the region with the given ID, or nil.
func (rs *RegionSet) ByID(id int) *Region {
	for i := range rs.Regions {
		if rs.Regions[i].ID == id {
			return &rs.Regions[i]
		}
	}
	return nil
}

// VoronoiOptions tunes the synthetic neighborhood generator.
type VoronoiOptions struct {
	// JitterFrac displaces densified boundary vertices by up to this
	// fraction of the mean cell radius, turning straight Voronoi edges into
	// the irregular boundaries real neighborhoods have. 0 keeps the exact
	// Voronoi partition (useful for conservation tests).
	JitterFrac float64
	// DensifyStep subdivides edges so no segment exceeds this many meters
	// before jittering. <= 0 picks a default from the cell size.
	DensifyStep float64
}

// VoronoiRegions partitions bounds into n irregular polygonal cells — the
// stand-in for NYC's neighborhood layer. With zero options the cells form an
// exact partition of bounds (no gaps or overlaps); jittering trades that for
// realistic wiggly boundaries.
//
// Construction is the classic half-plane intersection: each site's cell is
// the bounds rectangle clipped against the perpendicular bisector of every
// nearby site. A security-radius cutoff keeps it near O(n·k).
func VoronoiRegions(name string, bounds geom.BBox, n int, seed int64, opts VoronoiOptions) *RegionSet {
	if n < 1 {
		n = 1
	}
	rng := rand.New(rand.NewSource(seed))
	sites := make([]geom.Point, n)
	for i := range sites {
		sites[i] = geom.Point{
			X: bounds.MinX + rng.Float64()*bounds.Width(),
			Y: bounds.MinY + rng.Float64()*bounds.Height(),
		}
	}

	rs := &RegionSet{Name: name, Regions: make([]Region, 0, n)}
	order := make([]int, n)
	rect := geom.RectRing(bounds)
	for i, si := range sites {
		// Sort other sites by distance to si.
		for j := range order {
			order[j] = j
		}
		sort.Slice(order, func(a, b int) bool {
			return sites[order[a]].DistSq(si) < sites[order[b]].DistSq(si)
		})
		cell := rect.Clone()
		for _, j := range order {
			if j == i {
				continue
			}
			sj := sites[j]
			// Security radius: once the cell lies entirely closer to si
			// than half the distance to sj, no farther site can cut it.
			maxR2 := 0.0
			for _, v := range cell {
				if d := v.DistSq(si); d > maxR2 {
					maxR2 = d
				}
			}
			if si.DistSq(sj) > 4*maxR2 {
				break
			}
			mid := si.Lerp(sj, 0.5)
			nrm := sj.Sub(si)
			cell = geom.ClipRingToHalfPlane(cell, mid, nrm)
			if cell == nil {
				break
			}
		}
		if cell == nil {
			continue
		}
		if opts.JitterFrac > 0 {
			cell = jitterRing(cell, rng, opts, bounds)
		}
		rs.Regions = append(rs.Regions, Region{
			ID:   len(rs.Regions),
			Name: fmt.Sprintf("%s-%03d", name, len(rs.Regions)),
			Poly: geom.NewPolygon(cell),
		})
	}
	return rs
}

// jitterRing densifies the ring and displaces the inserted vertices
// perpendicular to their edge, clamped to bounds.
func jitterRing(r geom.Ring, rng *rand.Rand, opts VoronoiOptions, bounds geom.BBox) geom.Ring {
	meanRadius := math.Sqrt(r.Area() / math.Pi)
	step := opts.DensifyStep
	if step <= 0 {
		step = meanRadius / 4
	}
	amp := opts.JitterFrac * meanRadius
	out := make(geom.Ring, 0, 2*len(r))
	for i, a := range r {
		b := r[(i+1)%len(r)]
		out = append(out, a)
		length := a.Dist(b)
		segs := int(length / step)
		if segs < 1 {
			continue
		}
		dir := b.Sub(a).Scale(1 / length)
		perp := geom.Point{X: -dir.Y, Y: dir.X}
		for k := 1; k <= segs; k++ {
			t := float64(k) / float64(segs+1)
			p := a.Lerp(b, t).Add(perp.Scale((rng.Float64()*2 - 1) * amp))
			// Clamp into bounds so regions stay within the study area.
			p.X = math.Max(bounds.MinX, math.Min(bounds.MaxX, p.X))
			p.Y = math.Max(bounds.MinY, math.Min(bounds.MaxY, p.Y))
			out = append(out, p)
		}
	}
	// Jitter may produce self-intersections on sliver cells; simplify
	// slightly to knock out the worst degeneracies while keeping shape.
	if len(out) > 8 {
		out = geom.SimplifyRing(out, amp/10)
	}
	return out
}

// GridRegions partitions bounds into an nx×ny rectangular grid — the
// stand-in for census-tract-like fine resolutions and Urbane's grid view.
func GridRegions(name string, bounds geom.BBox, nx, ny int) *RegionSet {
	if nx < 1 {
		nx = 1
	}
	if ny < 1 {
		ny = 1
	}
	rs := &RegionSet{Name: name, Regions: make([]Region, 0, nx*ny)}
	w := bounds.Width() / float64(nx)
	h := bounds.Height() / float64(ny)
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			cell := geom.BBox{
				MinX: bounds.MinX + float64(x)*w,
				MinY: bounds.MinY + float64(y)*h,
				MaxX: bounds.MinX + float64(x+1)*w,
				MaxY: bounds.MinY + float64(y+1)*h,
			}
			rs.Regions = append(rs.Regions, Region{
				ID:   y*nx + x,
				Name: fmt.Sprintf("%s-%d-%d", name, x, y),
				Poly: geom.NewPolygon(geom.RectRing(cell)),
			})
		}
	}
	return rs
}

// SimplifyRegions returns a level-of-detail copy of the layer with every
// ring Douglas–Peucker-simplified to the tolerance (world meters). Urbane
// swaps in coarser polygon LODs at low zooms: the join gets cheaper (fewer
// edges to trace conservatively, fewer exact tests) at a bounded geometric
// error — vertices move at most tol from the original boundary. Regions
// whose simplification would degenerate keep their original ring.
func SimplifyRegions(rs *RegionSet, tol float64) *RegionSet {
	out := &RegionSet{
		Name:    fmt.Sprintf("%s-lod%g", rs.Name, tol),
		Regions: make([]Region, len(rs.Regions)),
	}
	for i, reg := range rs.Regions {
		pg := geom.Polygon{Outer: geom.SimplifyRing(reg.Poly.Outer, tol)}
		for _, h := range reg.Poly.Holes {
			sh := geom.SimplifyRing(h, tol)
			if sh.Area() > 0 {
				pg.Holes = append(pg.Holes, sh)
			}
		}
		if pg.Outer.Area() == 0 {
			pg = reg.Poly.Clone()
		}
		pg.Normalize()
		out.Regions[i] = Region{ID: reg.ID, Name: reg.Name, Poly: pg}
	}
	return out
}

// UserPolygon builds the ad-hoc, strongly non-convex region a demo visitor
// draws on the map: a jittered star centered at c. Pre-aggregation schemes
// cannot serve such a polygon; Raster Join evaluates it on the fly.
func UserPolygon(c geom.Point, radius float64, seed int64) geom.Polygon {
	rng := rand.New(rand.NewSource(seed))
	base := geom.StarRing(c, radius, radius*0.45, 7)
	out := make(geom.Ring, len(base))
	for i, p := range base {
		out[i] = geom.Point{
			X: p.X + (rng.Float64()*2-1)*radius*0.06,
			Y: p.Y + (rng.Float64()*2-1)*radius*0.06,
		}
	}
	return geom.NewPolygon(out)
}
