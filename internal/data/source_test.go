package data

import (
	"math"
	"math/rand"
	"testing"
)

func sourceTestSet(n int, sorted bool) *PointSet {
	rng := rand.New(rand.NewSource(int64(n)))
	ps := &PointSet{Name: "src-test"}
	vals := make([]float64, n)
	t := int64(1_600_000_000)
	for i := 0; i < n; i++ {
		ps.X = append(ps.X, rng.Float64()*1000)
		ps.Y = append(ps.Y, rng.Float64()*1000)
		if sorted {
			t += rng.Int63n(10)
		} else {
			t = 1_600_000_000 + rng.Int63n(100_000)
		}
		ps.T = append(ps.T, t)
		vals[i] = rng.Float64()
	}
	ps.AddAttr("v", vals)
	return ps
}

func TestPointSetSource(t *testing.T) {
	n := DefaultBlockSize*2 + 137
	ps := sourceTestSet(n, true)
	src := ps.Source()
	if src.Len() != n || src.Name() != "src-test" {
		t.Fatalf("Len=%d Name=%q", src.Len(), src.Name())
	}
	if !src.HasTime() || !src.TimeSorted() {
		t.Error("time flags wrong for sorted timed set")
	}
	if src.Stamp() != ps.Stamp() {
		t.Error("source stamp differs from set stamp")
	}
	if got, want := src.NumBlocks(), 3; got != want {
		t.Fatalf("NumBlocks = %d, want %d", got, want)
	}
	// Source is cached: same instance on the second call.
	if ps.Source() != src {
		t.Error("Source not cached")
	}
	covered := 0
	for b := 0; b < src.NumBlocks(); b++ {
		lo, hi := src.BlockSpan(b)
		if lo != covered {
			t.Fatalf("block %d starts at %d, want %d", b, lo, covered)
		}
		covered = hi
		blk, err := src.Block(b)
		if err != nil {
			t.Fatal(err)
		}
		if blk.Base != lo || blk.Len() != hi-lo {
			t.Fatalf("block %d geometry wrong", b)
		}
		// Zero-copy: block slices alias the set's columns.
		if &blk.X[0] != &ps.X[lo] || &blk.T[0] != &ps.T[lo] || &blk.Attr[0][0] != &ps.Attrs[0].Values[lo] {
			t.Fatalf("block %d is not a zero-copy view", b)
		}
		x, y := blk.XY(lo + 1)
		if x != ps.X[lo+1] || y != ps.Y[lo+1] {
			t.Fatalf("XY(%d) = (%v,%v)", lo+1, x, y)
		}
		z := src.Zone(b)
		want := BuildZone(ps, lo, hi)
		if z.X != want.X || z.Y != want.Y || z.MinT != want.MinT || z.MaxT != want.MaxT || z.Attr[0] != want.Attr[0] {
			t.Fatalf("block %d zone = %+v, want %+v", b, z, want)
		}
	}
	if covered != n {
		t.Fatalf("blocks cover %d points, want %d", covered, n)
	}
}

func TestPointSetSourceUnsorted(t *testing.T) {
	ps := sourceTestSet(100, false)
	if src := ps.Source(); src.TimeSorted() {
		t.Error("TimeSorted = true for unsorted set")
	}
	ps2 := sourceTestSet(50, true)
	ps2.T = nil
	src := ps2.Source()
	if src.HasTime() || src.TimeSorted() {
		t.Error("time flags set for timeless set")
	}
	blk, err := src.Block(0)
	if err != nil {
		t.Fatal(err)
	}
	if blk.T != nil {
		t.Error("timeless block has T")
	}
}

func TestZoneColNaN(t *testing.T) {
	z := EmptyZoneCol()
	z.Observe(math.NaN())
	if !z.HasNaN {
		t.Error("HasNaN not set")
	}
	if !math.IsInf(z.Min, 1) || !math.IsInf(z.Max, -1) {
		t.Error("NaN observation moved min/max")
	}
	z.Observe(3)
	z.Observe(-1)
	if z.Min != -1 || z.Max != 3 {
		t.Errorf("zone = %+v", z)
	}
}

func TestSlabAndWalkBlocks(t *testing.T) {
	ps := sourceTestSet(DefaultBlockSize+500, true)
	src := ps.Source()
	sl, ok := src.(Slabber)
	if !ok {
		t.Fatal("setSource does not implement Slabber")
	}
	blk, ok := sl.Slab(100, DefaultBlockSize+50)
	if !ok {
		t.Fatal("Slab refused")
	}
	if blk.Base != 100 || blk.Len() != DefaultBlockSize-50 {
		t.Fatalf("slab geometry: Base=%d Len=%d", blk.Base, blk.Len())
	}
	if &blk.X[0] != &ps.X[100] {
		t.Error("slab is not zero-copy")
	}

	// WalkBlocks over a Slabber: one call spanning the clipped range.
	calls := 0
	err := WalkBlocks(src, 10, 20_000, func(b *Block, s, e int) error {
		calls++
		if s != 10 || e != ps.Len() {
			t.Errorf("walk range [%d,%d)", s, e)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Errorf("Slabber walk made %d calls, want 1", calls)
	}

	// WalkBlocks over a non-Slabber: per-block calls, clipped at the edges.
	plain := plainSource{src}
	var seen []int
	err = WalkBlocks(plain, 100, DefaultBlockSize+50, func(b *Block, s, e int) error {
		seen = append(seen, s, e)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	wantSeen := []int{100, DefaultBlockSize, DefaultBlockSize, DefaultBlockSize + 50}
	if len(seen) != len(wantSeen) {
		t.Fatalf("walk ranges %v, want %v", seen, wantSeen)
	}
	for i := range seen {
		if seen[i] != wantSeen[i] {
			t.Fatalf("walk ranges %v, want %v", seen, wantSeen)
		}
	}
}

// plainSource hides the Slabber fast path.
type plainSource struct{ PointSource }

func TestAttrIndex(t *testing.T) {
	ps := sourceTestSet(10, true)
	src := ps.Source()
	if got := AttrIndex(src, "v"); got != 0 {
		t.Errorf("AttrIndex(v) = %d", got)
	}
	if got := AttrIndex(src, "missing"); got != -1 {
		t.Errorf("AttrIndex(missing) = %d", got)
	}
}

// TestStampPropagation is the regression net for stamp identity on derived
// sets: Slice and Select views must NOT inherit the parent's stamp (they
// are different data), and SortByTime must discard both the stamp and the
// cached Source, because caches keyed on the old stamp would otherwise
// alias reordered columns.
func TestStampPropagation(t *testing.T) {
	ps := sourceTestSet(1000, false)
	orig := ps.Stamp()
	if orig == 0 {
		t.Fatal("stamp is 0")
	}
	if ps.Stamp() != orig {
		t.Fatal("stamp not stable")
	}

	sl := ps.Slice(10, 500)
	if s := sl.Stamp(); s == orig || s == 0 {
		t.Errorf("Slice stamp %d aliases parent %d", s, orig)
	}
	sel := ps.Select([]int{5, 3, 1})
	if s := sel.Stamp(); s == orig || s == 0 {
		t.Errorf("Select stamp %d aliases parent %d", s, orig)
	}

	srcBefore := ps.Source()
	ps.SortByTime()
	if s := ps.Stamp(); s == orig {
		t.Error("SortByTime kept the old stamp over reordered data")
	}
	srcAfter := ps.Source()
	if srcAfter == srcBefore {
		t.Error("SortByTime kept the cached Source over reordered data")
	}
	if !srcAfter.TimeSorted() {
		t.Error("post-sort source not TimeSorted")
	}
}
