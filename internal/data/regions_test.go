package data

import (
	"bytes"
	"encoding/json"
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/geom"
	"repro/internal/mercator"
)

func testBounds() geom.BBox { return geom.BBox{MinX: 0, MinY: 0, MaxX: 1000, MaxY: 1000} }

func TestVoronoiPartition(t *testing.T) {
	rs := VoronoiRegions("nbhd", testBounds(), 50, 3, VoronoiOptions{})
	if rs.Len() != 50 {
		t.Fatalf("regions = %d, want 50", rs.Len())
	}
	// Without jitter the cells partition the bounds: areas sum to the
	// bounds area.
	var area float64
	for _, r := range rs.Regions {
		if err := r.Poly.Validate(); err != nil {
			t.Fatalf("region %d invalid: %v", r.ID, err)
		}
		area += r.Poly.Area()
	}
	if math.Abs(area-testBounds().Area()) > 1e-6*testBounds().Area() {
		t.Errorf("cell areas sum to %v, want %v", area, testBounds().Area())
	}
	// Every cell inside bounds.
	if !testBounds().ContainsBBox(rs.Bounds()) {
		t.Error("cells escape bounds")
	}
	// IDs are dense and ByID works.
	for i := 0; i < rs.Len(); i++ {
		if r := rs.ByID(i); r == nil || r.ID != i {
			t.Fatalf("ByID(%d) = %v", i, r)
		}
	}
	if rs.ByID(999) != nil {
		t.Error("ByID(999) should be nil")
	}
}

func TestVoronoiPartitionCoversRandomPoints(t *testing.T) {
	rs := VoronoiRegions("nbhd", testBounds(), 30, 5, VoronoiOptions{})
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 500; i++ {
		p := geom.Pt(rng.Float64()*1000, rng.Float64()*1000)
		hits := 0
		for _, r := range rs.Regions {
			if r.Poly.Contains(p) {
				hits++
			}
		}
		// A point interior to one cell is in exactly one; points near
		// shared edges may register zero due to open boundaries.
		if hits > 1 {
			t.Fatalf("point %v in %d cells, want <= 1", p, hits)
		}
	}
}

func TestVoronoiJitter(t *testing.T) {
	plain := VoronoiRegions("nbhd", testBounds(), 20, 7, VoronoiOptions{})
	jit := VoronoiRegions("nbhd", testBounds(), 20, 7, VoronoiOptions{JitterFrac: 0.1})
	if jit.VertexCount() <= plain.VertexCount() {
		t.Errorf("jitter should densify: %d <= %d vertices",
			jit.VertexCount(), plain.VertexCount())
	}
	// Jittered regions stay inside bounds.
	if !testBounds().ContainsBBox(jit.Bounds()) {
		t.Error("jittered cells escape bounds")
	}
	// Region count preserved.
	if jit.Len() != plain.Len() {
		t.Errorf("jitter changed region count: %d vs %d", jit.Len(), plain.Len())
	}
}

func TestVoronoiSingleRegion(t *testing.T) {
	rs := VoronoiRegions("one", testBounds(), 1, 1, VoronoiOptions{})
	if rs.Len() != 1 {
		t.Fatalf("regions = %d", rs.Len())
	}
	if math.Abs(rs.Regions[0].Poly.Area()-testBounds().Area()) > 1e-9 {
		t.Error("single cell should be the whole bounds")
	}
	// n < 1 clamps.
	if VoronoiRegions("x", testBounds(), 0, 1, VoronoiOptions{}).Len() != 1 {
		t.Error("n=0 should clamp to 1")
	}
}

func TestGridRegions(t *testing.T) {
	rs := GridRegions("grid", testBounds(), 4, 5)
	if rs.Len() != 20 {
		t.Fatalf("regions = %d, want 20", rs.Len())
	}
	var area float64
	for _, r := range rs.Regions {
		area += r.Poly.Area()
	}
	if math.Abs(area-1e6) > 1e-6 {
		t.Errorf("grid area = %v, want 1e6", area)
	}
	// Cell (0,0) has ID 0 and spans [0,250]x[0,200].
	want := geom.BBox{MinX: 0, MinY: 0, MaxX: 250, MaxY: 200}
	if b := rs.Regions[0].Poly.BBox(); b != want {
		t.Errorf("cell 0 bbox = %v, want %v", b, want)
	}
	if GridRegions("g", testBounds(), 0, 0).Len() != 1 {
		t.Error("0x0 grid should clamp to 1x1")
	}
}

func TestSimplifyRegions(t *testing.T) {
	rs := VoronoiRegions("nbhd", testBounds(), 20, 7, VoronoiOptions{JitterFrac: 0.1})
	lod := SimplifyRegions(rs, 10)
	if lod.Len() != rs.Len() {
		t.Fatalf("region count changed: %d vs %d", lod.Len(), rs.Len())
	}
	if lod.VertexCount() >= rs.VertexCount() {
		t.Errorf("LOD should shed vertices: %d -> %d", rs.VertexCount(), lod.VertexCount())
	}
	// Identity preserved, areas close, polygons valid.
	var areaDrift float64
	for i := range rs.Regions {
		if lod.Regions[i].ID != rs.Regions[i].ID || lod.Regions[i].Name != rs.Regions[i].Name {
			t.Fatalf("region %d identity changed", i)
		}
		if err := lod.Regions[i].Poly.Validate(); err != nil {
			t.Fatalf("region %d invalid after LOD: %v", i, err)
		}
		areaDrift += math.Abs(lod.Regions[i].Poly.Area() - rs.Regions[i].Poly.Area())
	}
	if total := testBounds().Area(); areaDrift > total/20 {
		t.Errorf("area drift %v too large vs total %v", areaDrift, total)
	}
	// Zero tolerance is an identity-ish copy.
	same := SimplifyRegions(rs, 0)
	if same.VertexCount() != rs.VertexCount() {
		t.Errorf("tol=0 changed vertices: %d vs %d", same.VertexCount(), rs.VertexCount())
	}
	// The original layer is untouched.
	if rs.Regions[0].Poly.VertexCount() == 0 {
		t.Error("source mutated")
	}
}

func TestGeoJSONGeographicRoundTrip(t *testing.T) {
	// Build a layer in mercator meters over NYC, write as degrees, read
	// back, and compare.
	rs := VoronoiRegions("nbhd", mercator.NYCBounds(), 8, 3, VoronoiOptions{})
	var buf bytes.Buffer
	if err := WriteGeoJSONGeographic(&buf, rs); err != nil {
		t.Fatal(err)
	}
	// The wire format is in plausible NYC degrees.
	var probe map[string]any
	if err := json.Unmarshal(buf.Bytes(), &probe); err != nil {
		t.Fatal(err)
	}
	got, err := ReadGeoJSONGeographic(bytes.NewReader(buf.Bytes()), "nbhd")
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != rs.Len() {
		t.Fatalf("regions: %d vs %d", got.Len(), rs.Len())
	}
	for i := range rs.Regions {
		a := rs.Regions[i].Poly.Centroid()
		b := got.Regions[i].Poly.Centroid()
		if a.Dist(b) > 0.5 { // half a meter after the double projection
			t.Fatalf("region %d centroid moved %v m", i, a.Dist(b))
		}
	}
	// Degrees input far outside mercator meters must fail plain ReadGeoJSON
	// consumers expecting meters? (They'd succeed geometrically; just check
	// the geographic reader rejects junk.)
	if _, err := ReadGeoJSONGeographic(strings.NewReader("{"), "x"); err == nil {
		t.Error("bad json should fail")
	}
}

func TestReadGeoJSONAuto(t *testing.T) {
	// Meters input passes through untouched.
	meters := VoronoiRegions("m", mercator.NYCBounds(), 5, 9, VoronoiOptions{})
	var buf bytes.Buffer
	if err := WriteGeoJSON(&buf, meters); err != nil {
		t.Fatal(err)
	}
	got, err := ReadGeoJSONAuto(bytes.NewReader(buf.Bytes()), "m")
	if err != nil {
		t.Fatal(err)
	}
	if d := got.Regions[0].Poly.Centroid().Dist(meters.Regions[0].Poly.Centroid()); d > 1e-9 {
		t.Errorf("meters input moved by %v", d)
	}
	// Degrees input gets projected: centroids land in NYC mercator bounds.
	buf.Reset()
	if err := WriteGeoJSONGeographic(&buf, meters); err != nil {
		t.Fatal(err)
	}
	got, err = ReadGeoJSONAuto(bytes.NewReader(buf.Bytes()), "deg")
	if err != nil {
		t.Fatal(err)
	}
	if !mercator.NYCBounds().Expand(10).ContainsBBox(got.Bounds()) {
		t.Errorf("degrees input not projected: bounds %v", got.Bounds())
	}
	if d := got.Regions[0].Poly.Centroid().Dist(meters.Regions[0].Poly.Centroid()); d > 0.5 {
		t.Errorf("projected centroid moved %v m", d)
	}
}

func TestUserPolygon(t *testing.T) {
	pg := UserPolygon(geom.Pt(500, 500), 100, 4)
	if err := pg.Validate(); err != nil {
		t.Fatal(err)
	}
	if !pg.Contains(geom.Pt(500, 500)) {
		t.Error("user polygon should contain its center")
	}
	if pg.VertexCount() < 10 {
		t.Errorf("user polygon has %d vertices, want >= 10", pg.VertexCount())
	}
	// Deterministic per seed.
	pg2 := UserPolygon(geom.Pt(500, 500), 100, 4)
	if !pg.Outer[0].Eq(pg2.Outer[0]) {
		t.Error("same seed should give same polygon")
	}
}

func TestRegionSetVertexCountAndBounds(t *testing.T) {
	rs := GridRegions("g", testBounds(), 2, 2)
	if rs.VertexCount() != 16 {
		t.Errorf("VertexCount = %d, want 16", rs.VertexCount())
	}
	if rs.Bounds() != testBounds() {
		t.Errorf("Bounds = %v", rs.Bounds())
	}
	empty := &RegionSet{}
	if !empty.Bounds().IsEmpty() {
		t.Error("empty set bounds should be empty")
	}
}
