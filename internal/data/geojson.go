package data

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/geom"
	"repro/internal/mercator"
)

// geoJSON wire types (the subset Urbane exchanges: Polygon features with
// id/name properties). Coordinates are [x, y] pairs in whatever CRS the
// caller uses; this reproduction stores mercator meters.
type gjFeatureCollection struct {
	Type     string      `json:"type"`
	Features []gjFeature `json:"features"`
}

type gjFeature struct {
	Type       string       `json:"type"`
	Properties gjProperties `json:"properties"`
	Geometry   gjGeometry   `json:"geometry"`
}

type gjProperties struct {
	ID   int    `json:"id"`
	Name string `json:"name,omitempty"`
}

type gjGeometry struct {
	Type        string         `json:"type"`
	Coordinates [][][2]float64 `json:"coordinates"`
}

// WriteGeoJSON encodes the region set as a GeoJSON FeatureCollection of
// Polygon features. Rings are closed on output (first vertex repeated) per
// the GeoJSON convention.
func WriteGeoJSON(w io.Writer, rs *RegionSet) error {
	fc := gjFeatureCollection{Type: "FeatureCollection"}
	for _, r := range rs.Regions {
		g := gjGeometry{Type: "Polygon"}
		g.Coordinates = append(g.Coordinates, closeRing(r.Poly.Outer))
		for _, h := range r.Poly.Holes {
			g.Coordinates = append(g.Coordinates, closeRing(h))
		}
		fc.Features = append(fc.Features, gjFeature{
			Type:       "Feature",
			Properties: gjProperties{ID: r.ID, Name: r.Name},
			Geometry:   g,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(fc)
}

// ReadGeoJSON decodes a FeatureCollection of Polygon features produced by
// WriteGeoJSON (or any compatible source). Non-polygon geometries are
// rejected.
func ReadGeoJSON(r io.Reader, name string) (*RegionSet, error) {
	var fc gjFeatureCollection
	dec := json.NewDecoder(r)
	if err := dec.Decode(&fc); err != nil {
		return nil, fmt.Errorf("data: decoding geojson: %w", err)
	}
	if fc.Type != "FeatureCollection" {
		return nil, fmt.Errorf("data: geojson root type %q, want FeatureCollection", fc.Type)
	}
	rs := &RegionSet{Name: name}
	for i, f := range fc.Features {
		if f.Geometry.Type == "MultiPolygon" {
			return nil, fmt.Errorf("data: feature %d is a MultiPolygon; split multi-part "+
				"regions into one Polygon feature per part before loading", i)
		}
		if f.Geometry.Type != "Polygon" {
			return nil, fmt.Errorf("data: feature %d has geometry %q, want Polygon", i, f.Geometry.Type)
		}
		if len(f.Geometry.Coordinates) == 0 {
			return nil, fmt.Errorf("data: feature %d has no rings", i)
		}
		pg := geom.Polygon{Outer: openRing(f.Geometry.Coordinates[0])}
		for _, ring := range f.Geometry.Coordinates[1:] {
			pg.Holes = append(pg.Holes, openRing(ring))
		}
		pg.Normalize()
		if err := pg.Validate(); err != nil {
			return nil, fmt.Errorf("data: feature %d: %w", i, err)
		}
		rs.Regions = append(rs.Regions, Region{ID: f.Properties.ID, Name: f.Properties.Name, Poly: pg})
	}
	return rs, nil
}

// ReadGeoJSONGeographic decodes a FeatureCollection whose coordinates are
// geographic degrees (EPSG:4326, the GeoJSON default) — e.g. NYC's real
// published neighborhood polygons — projecting every vertex to Web-Mercator
// meters on load.
func ReadGeoJSONGeographic(r io.Reader, name string) (*RegionSet, error) {
	rs, err := ReadGeoJSON(r, name)
	if err != nil {
		return nil, err
	}
	project := func(ring geom.Ring) {
		for i, p := range ring {
			ring[i] = mercator.Project(mercator.LngLat{Lng: p.X, Lat: p.Y})
		}
	}
	for i := range rs.Regions {
		project(rs.Regions[i].Poly.Outer)
		for _, h := range rs.Regions[i].Poly.Holes {
			project(h)
		}
		rs.Regions[i].Poly.Normalize()
	}
	return rs, nil
}

// ReadGeoJSONAuto decodes a FeatureCollection and detects its CRS: when
// every coordinate fits in geographic degree ranges (|lng| <= 180,
// |lat| <= 85.06) the file is treated as EPSG:4326 and projected to
// mercator meters; otherwise coordinates are taken as mercator meters
// as-is. Real city open-data portals publish degrees; this repo's own
// datagen output is meters — Auto accepts both.
func ReadGeoJSONAuto(r io.Reader, name string) (*RegionSet, error) {
	rs, err := ReadGeoJSON(r, name)
	if err != nil {
		return nil, err
	}
	if !looksGeographic(rs) {
		return rs, nil
	}
	project := func(ring geom.Ring) {
		for i, p := range ring {
			ring[i] = mercator.Project(mercator.LngLat{Lng: p.X, Lat: p.Y})
		}
	}
	for i := range rs.Regions {
		project(rs.Regions[i].Poly.Outer)
		for _, h := range rs.Regions[i].Poly.Holes {
			project(h)
		}
		rs.Regions[i].Poly.Normalize()
	}
	return rs, nil
}

// looksGeographic reports whether every vertex fits in lng/lat degree
// ranges. A non-empty mercator-meter layer over any real city violates
// this immediately (city extents are tens of kilometers).
func looksGeographic(rs *RegionSet) bool {
	if rs.Len() == 0 {
		return false
	}
	b := rs.Bounds()
	return b.MinX >= -180 && b.MaxX <= 180 &&
		b.MinY >= -mercator.MaxLatitude && b.MaxY <= mercator.MaxLatitude
}

// WriteGeoJSONGeographic encodes the region set with coordinates converted
// back to geographic degrees, producing standard EPSG:4326 GeoJSON that any
// GIS tool can open.
func WriteGeoJSONGeographic(w io.Writer, rs *RegionSet) error {
	out := &RegionSet{Name: rs.Name, Regions: make([]Region, len(rs.Regions))}
	unproject := func(ring geom.Ring) geom.Ring {
		o := make(geom.Ring, len(ring))
		for i, p := range ring {
			ll := mercator.Unproject(p)
			o[i] = geom.Point{X: ll.Lng, Y: ll.Lat}
		}
		return o
	}
	for i, reg := range rs.Regions {
		pg := geom.Polygon{Outer: unproject(reg.Poly.Outer)}
		for _, h := range reg.Poly.Holes {
			pg.Holes = append(pg.Holes, unproject(h))
		}
		out.Regions[i] = Region{ID: reg.ID, Name: reg.Name, Poly: pg}
	}
	return WriteGeoJSON(w, out)
}

// closeRing converts a geom.Ring to GeoJSON coordinates with the first
// vertex repeated at the end.
func closeRing(r geom.Ring) [][2]float64 {
	out := make([][2]float64, 0, len(r)+1)
	for _, p := range r {
		out = append(out, [2]float64{p.X, p.Y})
	}
	if len(r) > 0 {
		out = append(out, [2]float64{r[0].X, r[0].Y})
	}
	return out
}

// openRing converts GeoJSON coordinates to a geom.Ring, dropping the
// repeated closing vertex when present.
func openRing(coords [][2]float64) geom.Ring {
	n := len(coords)
	if n > 1 && coords[0] == coords[n-1] {
		n--
	}
	r := make(geom.Ring, n)
	for i := 0; i < n; i++ {
		r[i] = geom.Point{X: coords[i][0], Y: coords[i][1]}
	}
	return r
}
