package data

import (
	"testing"

	"repro/internal/geom"
)

func smallSet() *PointSet {
	return &PointSet{
		Name: "test",
		X:    []float64{0, 10, 5, 2},
		Y:    []float64{0, 10, 3, 8},
		T:    []int64{40, 10, 30, 20},
		Attrs: []Column{
			{Name: "fare", Values: []float64{1, 2, 3, 4}},
		},
	}
}

func TestPointSetValidate(t *testing.T) {
	ps := smallSet()
	if err := ps.Validate(); err != nil {
		t.Errorf("valid set: %v", err)
	}
	ps.Y = ps.Y[:3]
	if err := ps.Validate(); err == nil {
		t.Error("short Y should fail validation")
	}
	ps = smallSet()
	ps.T = ps.T[:2]
	if err := ps.Validate(); err == nil {
		t.Error("short T should fail validation")
	}
	ps = smallSet()
	ps.Attrs[0].Values = ps.Attrs[0].Values[:1]
	if err := ps.Validate(); err == nil {
		t.Error("short attr should fail validation")
	}
	// Nil T is allowed (atemporal data sets).
	ps = smallSet()
	ps.T = nil
	if err := ps.Validate(); err != nil {
		t.Errorf("nil T should be valid: %v", err)
	}
}

func TestAttrLookup(t *testing.T) {
	ps := smallSet()
	if col := ps.Attr("fare"); col == nil || col[2] != 3 {
		t.Errorf("Attr(fare) = %v", col)
	}
	if col := ps.Attr("missing"); col != nil {
		t.Errorf("Attr(missing) = %v, want nil", col)
	}
	names := ps.AttrNames()
	if len(names) != 1 || names[0] != "fare" {
		t.Errorf("AttrNames = %v", names)
	}
}

func TestAddAttr(t *testing.T) {
	ps := smallSet()
	ps.AddAttr("tip", []float64{0.1, 0.2, 0.3, 0.4})
	if ps.Attr("tip") == nil {
		t.Error("added attr should be retrievable")
	}
	defer func() {
		if recover() == nil {
			t.Error("mismatched AddAttr should panic")
		}
	}()
	ps.AddAttr("bad", []float64{1})
}

func TestBounds(t *testing.T) {
	ps := smallSet()
	want := geom.BBox{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10}
	if b := ps.Bounds(); b != want {
		t.Errorf("Bounds = %v, want %v", b, want)
	}
	empty := &PointSet{}
	if !empty.Bounds().IsEmpty() {
		t.Error("empty set bounds should be empty")
	}
}

func TestTimeRange(t *testing.T) {
	ps := smallSet()
	tmin, tmax, ok := ps.TimeRange()
	if !ok || tmin != 10 || tmax != 40 {
		t.Errorf("TimeRange = %d,%d,%v want 10,40,true", tmin, tmax, ok)
	}
	if _, _, ok := (&PointSet{X: []float64{1}, Y: []float64{1}}).TimeRange(); ok {
		t.Error("no time column should report !ok")
	}
}

func TestSortByTimeAndWindow(t *testing.T) {
	ps := smallSet()
	ps.SortByTime()
	for i := 1; i < ps.Len(); i++ {
		if ps.T[i-1] > ps.T[i] {
			t.Fatalf("not sorted: %v", ps.T)
		}
	}
	// Attribute rows must follow their points: the point at t=30 is (5,3)
	// with fare 3.
	found := false
	for i := range ps.T {
		if ps.T[i] == 30 {
			if ps.X[i] != 5 || ps.Y[i] != 3 || ps.Attrs[0].Values[i] != 3 {
				t.Errorf("row for t=30 scrambled: x=%v y=%v fare=%v",
					ps.X[i], ps.Y[i], ps.Attrs[0].Values[i])
			}
			found = true
		}
	}
	if !found {
		t.Fatal("t=30 row lost")
	}

	lo, hi := ps.TimeWindow(15, 35)
	if hi-lo != 2 {
		t.Errorf("window [15,35) = %d points, want 2", hi-lo)
	}
	for i := lo; i < hi; i++ {
		if ps.T[i] < 15 || ps.T[i] >= 35 {
			t.Errorf("point %d time %d outside window", i, ps.T[i])
		}
	}
	// Empty window.
	lo, hi = ps.TimeWindow(100, 200)
	if lo != hi {
		t.Errorf("empty window = [%d,%d)", lo, hi)
	}
}

func TestSliceAndSelect(t *testing.T) {
	ps := smallSet()
	s := ps.Slice(1, 3)
	if s.Len() != 2 || s.X[0] != 10 || s.T[1] != 30 {
		t.Errorf("Slice = %+v", s)
	}
	sel := ps.Select([]int{3, 0})
	if sel.Len() != 2 || sel.X[0] != 2 || sel.X[1] != 0 ||
		sel.Attrs[0].Values[0] != 4 || sel.T[1] != 40 {
		t.Errorf("Select = %+v", sel)
	}
	// Select on a set without time column.
	noT := &PointSet{X: []float64{1, 2}, Y: []float64{3, 4}}
	got := noT.Select([]int{1})
	if got.T != nil || got.X[0] != 2 {
		t.Errorf("Select without T = %+v", got)
	}
}
