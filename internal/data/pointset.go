// Package data provides the spatio-temporal data substrate: a columnar
// point-set container, calibrated synthetic generators standing in for the
// NYC taxi / 311 / photo data sets the paper explores, polygonal region
// generators standing in for NYC's neighborhood and census-tract layers,
// and GeoJSON/CSV codecs.
package data

import (
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/geom"
)

// Column is a named float64 attribute column.
type Column struct {
	Name   string
	Values []float64
}

// PointSet is a columnar set of spatio-temporal points
// P(loc, t, a1, a2, ...): parallel slices of mercator coordinates, unix
// timestamps, and attribute columns. The layout matches how Raster Join
// streams vertex buffers to the GPU.
type PointSet struct {
	Name string
	// X, Y are Web-Mercator meters.
	X, Y []float64
	// T is seconds since the Unix epoch.
	T []int64
	// Attrs are the attribute columns, all of length Len().
	Attrs []Column

	stamp  atomic.Uint64
	source atomic.Pointer[setSource]
}

// pointSetStamps issues process-unique PointSet identities; 0 is reserved
// for "not yet stamped".
var pointSetStamps atomic.Uint64

// Stamp returns a process-unique identity for this point set, assigned
// lazily on first call. Caches keyed by point data (the geoblocks
// hierarchy) use it instead of the Name — names can be reused across
// re-registered data sets. Callers must treat the columns as immutable
// once the set is stamped.
func (ps *PointSet) Stamp() uint64 {
	if s := ps.stamp.Load(); s != 0 {
		return s
	}
	s := pointSetStamps.Add(1)
	if ps.stamp.CompareAndSwap(0, s) {
		return s
	}
	return ps.stamp.Load()
}

// Len returns the number of points.
func (ps *PointSet) Len() int { return len(ps.X) }

// Validate checks that all columns have equal length.
func (ps *PointSet) Validate() error {
	n := len(ps.X)
	if len(ps.Y) != n {
		return fmt.Errorf("data: %q: Y has %d values, want %d", ps.Name, len(ps.Y), n)
	}
	if ps.T != nil && len(ps.T) != n {
		return fmt.Errorf("data: %q: T has %d values, want %d", ps.Name, len(ps.T), n)
	}
	for _, c := range ps.Attrs {
		if len(c.Values) != n {
			return fmt.Errorf("data: %q: attr %q has %d values, want %d",
				ps.Name, c.Name, len(c.Values), n)
		}
	}
	return nil
}

// Attr returns the named attribute column, or nil when absent.
func (ps *PointSet) Attr(name string) []float64 {
	for _, c := range ps.Attrs {
		if c.Name == name {
			return c.Values
		}
	}
	return nil
}

// AttrNames returns the attribute column names in storage order.
func (ps *PointSet) AttrNames() []string {
	names := make([]string, len(ps.Attrs))
	for i, c := range ps.Attrs {
		names[i] = c.Name
	}
	return names
}

// AddAttr appends an attribute column. It panics if the length mismatches,
// as that is a programming error.
func (ps *PointSet) AddAttr(name string, values []float64) {
	if len(values) != ps.Len() {
		panic(fmt.Sprintf("data: attr %q has %d values, point set has %d",
			name, len(values), ps.Len()))
	}
	ps.Attrs = append(ps.Attrs, Column{Name: name, Values: values})
}

// Bounds returns the bounding box of all points.
func (ps *PointSet) Bounds() geom.BBox {
	b := geom.EmptyBBox()
	for i := range ps.X {
		b = b.ExtendPoint(geom.Point{X: ps.X[i], Y: ps.Y[i]})
	}
	return b
}

// TimeRange returns the min and max timestamps, or ok=false when the set is
// empty or has no time column.
func (ps *PointSet) TimeRange() (min, max int64, ok bool) {
	if len(ps.T) == 0 {
		return 0, 0, false
	}
	min, max = ps.T[0], ps.T[0]
	for _, v := range ps.T[1:] {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	return min, max, true
}

// Slice returns a view-style copy containing points [lo, hi).
func (ps *PointSet) Slice(lo, hi int) *PointSet {
	out := &PointSet{
		Name: ps.Name,
		X:    ps.X[lo:hi],
		Y:    ps.Y[lo:hi],
	}
	if ps.T != nil {
		out.T = ps.T[lo:hi]
	}
	for _, c := range ps.Attrs {
		out.Attrs = append(out.Attrs, Column{Name: c.Name, Values: c.Values[lo:hi]})
	}
	return out
}

// Select returns a new PointSet containing the points at the given indices.
func (ps *PointSet) Select(idx []int) *PointSet {
	out := &PointSet{
		Name: ps.Name,
		X:    make([]float64, len(idx)),
		Y:    make([]float64, len(idx)),
	}
	if ps.T != nil {
		out.T = make([]int64, len(idx))
	}
	for _, c := range ps.Attrs {
		out.Attrs = append(out.Attrs, Column{Name: c.Name, Values: make([]float64, len(idx))})
	}
	for j, i := range idx {
		out.X[j] = ps.X[i]
		out.Y[j] = ps.Y[i]
		if ps.T != nil {
			out.T[j] = ps.T[i]
		}
		for k := range ps.Attrs {
			out.Attrs[k].Values[j] = ps.Attrs[k].Values[i]
		}
	}
	return out
}

// SortByTime reorders the points in ascending timestamp order. Sorting is
// stable with respect to nothing in particular; it exists so time-filtered
// scans can binary-search their window.
//
// Reordering produces new data, so any previously issued stamp and cached
// Source view are discarded: geoblocks/span/segment caches keyed on the old
// stamp must never alias the reordered columns. The columns are assigned
// field-wise — the whole struct cannot be copied over because the stamp and
// source fields are atomics.
func (ps *PointSet) SortByTime() {
	if ps.T == nil {
		return
	}
	idx := make([]int, ps.Len())
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return ps.T[idx[a]] < ps.T[idx[b]] })
	sorted := ps.Select(idx)
	ps.X, ps.Y, ps.T, ps.Attrs = sorted.X, sorted.Y, sorted.T, sorted.Attrs
	ps.stamp.Store(0)
	ps.source.Store(nil)
}

// AppendCOW returns a new PointSet holding ps's points followed by tail's,
// without copying ps's columns when spare capacity allows: the new set is
// built with append, so it shares ps's backing arrays and writes only
// beyond ps's length. Concurrent readers of ps are safe — they hold slice
// headers whose length stops at the old point count and never index past
// it — which is what lets the framework's Append swap in the grown set
// while queries over the old snapshot are still running.
//
// tail must match ps's schema exactly: the same presence of a time column
// and the same attribute columns in the same order. ps itself is not
// modified and keeps serving its old length; the returned set is unstamped,
// so stamp-keyed caches (geoblocks, slab partials) treat it as new data.
func (ps *PointSet) AppendCOW(tail *PointSet) (*PointSet, error) {
	if err := tail.Validate(); err != nil {
		return nil, err
	}
	if (ps.T != nil) != (tail.T != nil) {
		return nil, fmt.Errorf("data: %q: append tail time column mismatch (base has time: %v)",
			ps.Name, ps.T != nil)
	}
	if len(tail.Attrs) != len(ps.Attrs) {
		return nil, fmt.Errorf("data: %q: append tail has %d attributes, base has %d",
			ps.Name, len(tail.Attrs), len(ps.Attrs))
	}
	for i := range ps.Attrs {
		if tail.Attrs[i].Name != ps.Attrs[i].Name {
			return nil, fmt.Errorf("data: %q: append tail attribute %d is %q, base has %q",
				ps.Name, i, tail.Attrs[i].Name, ps.Attrs[i].Name)
		}
	}
	out := &PointSet{
		Name: ps.Name,
		X:    append(ps.X, tail.X...),
		Y:    append(ps.Y, tail.Y...),
	}
	if ps.T != nil {
		out.T = append(ps.T, tail.T...)
	}
	out.Attrs = make([]Column, len(ps.Attrs))
	for i, c := range ps.Attrs {
		out.Attrs[i] = Column{Name: c.Name, Values: append(c.Values, tail.Attrs[i].Values...)}
	}
	return out, nil
}

// TimeWindow returns the index range [lo, hi) of points with timestamps in
// [start, end), assuming the set is sorted by time.
func (ps *PointSet) TimeWindow(start, end int64) (lo, hi int) {
	lo = sort.Search(ps.Len(), func(i int) bool { return ps.T[i] >= start })
	hi = sort.Search(ps.Len(), func(i int) bool { return ps.T[i] >= end })
	return lo, hi
}

// Unix returns t as a UTC time — a readability helper for examples.
func Unix(t int64) time.Time { return time.Unix(t, 0).UTC() }
