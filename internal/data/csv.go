package data

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV encodes the point set with a header row: x, y, t, then one column
// per attribute.
func WriteCSV(w io.Writer, ps *PointSet) error {
	if err := ps.Validate(); err != nil {
		return err
	}
	cw := csv.NewWriter(w)
	header := []string{"x", "y", "t"}
	header = append(header, ps.AttrNames()...)
	if err := cw.Write(header); err != nil {
		return err
	}
	row := make([]string, len(header))
	for i := 0; i < ps.Len(); i++ {
		row[0] = strconv.FormatFloat(ps.X[i], 'f', -1, 64)
		row[1] = strconv.FormatFloat(ps.Y[i], 'f', -1, 64)
		var t int64
		if ps.T != nil {
			t = ps.T[i]
		}
		row[2] = strconv.FormatInt(t, 10)
		for k, c := range ps.Attrs {
			row[3+k] = strconv.FormatFloat(c.Values[i], 'f', -1, 64)
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// StreamCSV reads a CSV point stream in batches of up to batchSize rows,
// invoking fn with each non-empty batch. Batches reuse nothing between
// calls, so fn may retain or discard them freely — this is the reader side
// of the streaming join, letting inputs larger than memory flow through
// aggregation one batch at a time.
func StreamCSV(r io.Reader, name string, batchSize int, fn func(*PointSet) error) error {
	if batchSize < 1 {
		batchSize = 1 << 16
	}
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return fmt.Errorf("data: reading csv header: %w", err)
	}
	if len(header) < 3 || header[0] != "x" || header[1] != "y" || header[2] != "t" {
		return fmt.Errorf("data: csv header %v, want x,y,t,...", header)
	}
	attrNames := append([]string(nil), header[3:]...)
	newBatch := func() *PointSet {
		ps := &PointSet{Name: name}
		for _, n := range attrNames {
			ps.Attrs = append(ps.Attrs, Column{Name: n})
		}
		return ps
	}
	ps := newBatch()
	line := 1
	flush := func() error {
		if ps.Len() == 0 {
			return nil
		}
		if err := fn(ps); err != nil {
			return err
		}
		ps = newBatch()
		return nil
	}
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return fmt.Errorf("data: reading csv line %d: %w", line+1, err)
		}
		line++
		if err := appendRow(ps, rec, header, line); err != nil {
			return err
		}
		if ps.Len() >= batchSize {
			if err := flush(); err != nil {
				return err
			}
		}
	}
	return flush()
}

// appendRow parses one CSV record into the point set.
func appendRow(ps *PointSet, rec, header []string, line int) error {
	if len(rec) != len(header) {
		return fmt.Errorf("data: csv line %d has %d fields, want %d", line, len(rec), len(header))
	}
	x, err := strconv.ParseFloat(rec[0], 64)
	if err != nil {
		return fmt.Errorf("data: csv line %d x: %w", line, err)
	}
	y, err := strconv.ParseFloat(rec[1], 64)
	if err != nil {
		return fmt.Errorf("data: csv line %d y: %w", line, err)
	}
	t, err := strconv.ParseInt(rec[2], 10, 64)
	if err != nil {
		return fmt.Errorf("data: csv line %d t: %w", line, err)
	}
	ps.X = append(ps.X, x)
	ps.Y = append(ps.Y, y)
	ps.T = append(ps.T, t)
	for k := range ps.Attrs {
		v, err := strconv.ParseFloat(rec[3+k], 64)
		if err != nil {
			return fmt.Errorf("data: csv line %d attr %q: %w", line, ps.Attrs[k].Name, err)
		}
		ps.Attrs[k].Values = append(ps.Attrs[k].Values, v)
	}
	return nil
}

// ReadCSV decodes a point set written by WriteCSV. The first three columns
// must be x, y, t; any further columns become attributes named by the
// header.
func ReadCSV(r io.Reader, name string) (*PointSet, error) {
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("data: reading csv header: %w", err)
	}
	if len(header) < 3 || header[0] != "x" || header[1] != "y" || header[2] != "t" {
		return nil, fmt.Errorf("data: csv header %v, want x,y,t,...", header)
	}
	ps := &PointSet{Name: name}
	for _, n := range header[3:] {
		ps.Attrs = append(ps.Attrs, Column{Name: n})
	}
	line := 1
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("data: reading csv line %d: %w", line+1, err)
		}
		line++
		if len(rec) != len(header) {
			return nil, fmt.Errorf("data: csv line %d has %d fields, want %d", line, len(rec), len(header))
		}
		x, err := strconv.ParseFloat(rec[0], 64)
		if err != nil {
			return nil, fmt.Errorf("data: csv line %d x: %w", line, err)
		}
		y, err := strconv.ParseFloat(rec[1], 64)
		if err != nil {
			return nil, fmt.Errorf("data: csv line %d y: %w", line, err)
		}
		t, err := strconv.ParseInt(rec[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("data: csv line %d t: %w", line, err)
		}
		ps.X = append(ps.X, x)
		ps.Y = append(ps.Y, y)
		ps.T = append(ps.T, t)
		for k := range ps.Attrs {
			v, err := strconv.ParseFloat(rec[3+k], 64)
			if err != nil {
				return nil, fmt.Errorf("data: csv line %d attr %q: %w", line, ps.Attrs[k].Name, err)
			}
			ps.Attrs[k].Values = append(ps.Attrs[k].Values, v)
		}
	}
	return ps, nil
}
