package data

import (
	"testing"
	"time"

	"repro/internal/mercator"
)

func BenchmarkGenerateTaxi(b *testing.B) {
	cfg := NYCTaxiConfig(100_000, 2009, time.January, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Generate(cfg)
	}
}

func BenchmarkVoronoiRegions(b *testing.B) {
	bounds := mercator.NYCBounds()
	for _, n := range []int{260, 2048} {
		b.Run(map[int]string{260: "neighborhoods", 2048: "tracts"}[n], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				VoronoiRegions("bench", bounds, n, 1, VoronoiOptions{JitterFrac: 0.1})
			}
		})
	}
}

func BenchmarkSortByTime(b *testing.B) {
	base := Generate(NYCTaxiConfig(100_000, 2009, time.January, 2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		// Scramble before each sort so the work is real.
		cp := base.Select(scrambled(base.Len()))
		b.StartTimer()
		cp.SortByTime()
	}
}

func scrambled(n int) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = (i*7919 + 13) % n
	}
	return idx
}
