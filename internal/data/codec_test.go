package data

import (
	"bytes"
	"io"
	"strings"
	"testing"
	"time"

	"repro/internal/geom"
)

func TestCSVRoundTrip(t *testing.T) {
	ps := Generate(NYCTaxiConfig(200, 2009, time.January, 13))
	var buf bytes.Buffer
	if err := WriteCSV(&buf, ps); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf, "taxi")
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != ps.Len() {
		t.Fatalf("round trip lost rows: %d vs %d", got.Len(), ps.Len())
	}
	if len(got.Attrs) != len(ps.Attrs) {
		t.Fatalf("round trip lost attrs: %d vs %d", len(got.Attrs), len(ps.Attrs))
	}
	for i := 0; i < ps.Len(); i++ {
		if got.X[i] != ps.X[i] || got.Y[i] != ps.Y[i] || got.T[i] != ps.T[i] {
			t.Fatalf("row %d differs", i)
		}
	}
	for k := range ps.Attrs {
		if got.Attrs[k].Name != ps.Attrs[k].Name {
			t.Fatalf("attr %d name %q vs %q", k, got.Attrs[k].Name, ps.Attrs[k].Name)
		}
		for i := range ps.Attrs[k].Values {
			if got.Attrs[k].Values[i] != ps.Attrs[k].Values[i] {
				t.Fatalf("attr %q row %d differs", ps.Attrs[k].Name, i)
			}
		}
	}
}

func TestStreamCSV(t *testing.T) {
	ps := Generate(NYCTaxiConfig(1000, 2009, time.January, 41))
	var buf bytes.Buffer
	if err := WriteCSV(&buf, ps); err != nil {
		t.Fatal(err)
	}
	var batches []int
	total := 0
	err := StreamCSV(bytes.NewReader(buf.Bytes()), "taxi", 300, func(b *PointSet) error {
		if err := b.Validate(); err != nil {
			return err
		}
		batches = append(batches, b.Len())
		total += b.Len()
		if len(b.Attrs) != len(ps.Attrs) {
			t.Fatalf("batch attrs = %d, want %d", len(b.Attrs), len(ps.Attrs))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if total != ps.Len() {
		t.Fatalf("streamed %d rows, want %d", total, ps.Len())
	}
	// 1000 rows at 300/batch: 300,300,300,100.
	if len(batches) != 4 || batches[3] != 100 {
		t.Errorf("batches = %v", batches)
	}
	// Default batch size kicks in for batchSize < 1.
	calls := 0
	err = StreamCSV(bytes.NewReader(buf.Bytes()), "taxi", 0, func(b *PointSet) error {
		calls++
		return nil
	})
	if err != nil || calls != 1 {
		t.Errorf("default batch: calls=%d err=%v", calls, err)
	}
	// Callback errors propagate.
	sentinel := strings.NewReader(buf.String())
	err = StreamCSV(sentinel, "taxi", 100, func(b *PointSet) error {
		return io.ErrUnexpectedEOF
	})
	if err != io.ErrUnexpectedEOF {
		t.Errorf("callback error not propagated: %v", err)
	}
	// Bad input errors.
	if err := StreamCSV(strings.NewReader("a,b,c\n"), "x", 10, nil); err == nil {
		t.Error("bad header should fail")
	}
	if err := StreamCSV(strings.NewReader("x,y,t\n1,2,zzz\n"),
		"x", 10, func(*PointSet) error { return nil }); err == nil {
		t.Error("bad row should fail")
	}
}

func TestCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("a,b,c\n1,2,3\n"), "x"); err == nil {
		t.Error("bad header should fail")
	}
	if _, err := ReadCSV(strings.NewReader("x,y,t\n1,2,notanint\n"), "x"); err == nil {
		t.Error("bad timestamp should fail")
	}
	if _, err := ReadCSV(strings.NewReader("x,y,t,fare\n1,2,3,bad\n"), "x"); err == nil {
		t.Error("bad attr should fail")
	}
	if _, err := ReadCSV(strings.NewReader(""), "x"); err == nil {
		t.Error("empty input should fail")
	}
	// Invalid point set refuses to encode.
	bad := &PointSet{X: []float64{1}, Y: nil}
	if err := WriteCSV(&bytes.Buffer{}, bad); err == nil {
		t.Error("invalid set should fail to encode")
	}
}

func TestGeoJSONRoundTrip(t *testing.T) {
	rs := VoronoiRegions("nbhd", testBounds(), 12, 21, VoronoiOptions{JitterFrac: 0.05})
	// Add a polygon with a hole to cover the multi-ring path.
	holed := geom.Polygon{
		Outer: geom.RectRing(geom.BBox{MinX: 100, MinY: 100, MaxX: 300, MaxY: 300}),
		Holes: []geom.Ring{geom.RectRing(geom.BBox{MinX: 150, MinY: 150, MaxX: 250, MaxY: 250})},
	}
	holed.Normalize()
	rs.Regions = append(rs.Regions, Region{ID: 12, Name: "holed", Poly: holed})

	var buf bytes.Buffer
	if err := WriteGeoJSON(&buf, rs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadGeoJSON(&buf, "nbhd")
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != rs.Len() {
		t.Fatalf("round trip: %d regions vs %d", got.Len(), rs.Len())
	}
	for i, r := range rs.Regions {
		g := got.Regions[i]
		if g.ID != r.ID || g.Name != r.Name {
			t.Fatalf("region %d identity differs: %+v vs %+v", i, g, r)
		}
		if len(g.Poly.Outer) != len(r.Poly.Outer) {
			t.Fatalf("region %d outer ring %d vs %d vertices",
				i, len(g.Poly.Outer), len(r.Poly.Outer))
		}
		if len(g.Poly.Holes) != len(r.Poly.Holes) {
			t.Fatalf("region %d holes %d vs %d", i, len(g.Poly.Holes), len(r.Poly.Holes))
		}
		if d := g.Poly.Area() - r.Poly.Area(); d > 1e-9 || d < -1e-9 {
			t.Fatalf("region %d area drifted by %v", i, d)
		}
	}
}

func TestGeoJSONErrors(t *testing.T) {
	if _, err := ReadGeoJSON(strings.NewReader(`{"type":"Point"}`), "x"); err == nil {
		t.Error("non-collection root should fail")
	}
	bad := `{"type":"FeatureCollection","features":[
		{"type":"Feature","properties":{"id":0},
		 "geometry":{"type":"LineString","coordinates":[]}}]}`
	if _, err := ReadGeoJSON(strings.NewReader(bad), "x"); err == nil {
		t.Error("non-polygon geometry should fail")
	}
	empty := `{"type":"FeatureCollection","features":[
		{"type":"Feature","properties":{"id":0},
		 "geometry":{"type":"Polygon","coordinates":[]}}]}`
	if _, err := ReadGeoJSON(strings.NewReader(empty), "x"); err == nil {
		t.Error("ringless polygon should fail")
	}
	if _, err := ReadGeoJSON(strings.NewReader("{"), "x"); err == nil {
		t.Error("truncated json should fail")
	}
}

func TestGeoJSONNormalizesWinding(t *testing.T) {
	// A clockwise outer ring on input must come back CCW.
	in := `{"type":"FeatureCollection","features":[
		{"type":"Feature","properties":{"id":7,"name":"cw"},
		 "geometry":{"type":"Polygon","coordinates":[
			[[0,0],[0,10],[10,10],[10,0],[0,0]]]}}]}`
	rs, err := ReadGeoJSON(strings.NewReader(in), "x")
	if err != nil {
		t.Fatal(err)
	}
	if !rs.Regions[0].Poly.Outer.IsCCW() {
		t.Error("outer ring should be normalized to CCW")
	}
}
