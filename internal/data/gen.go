package data

import (
	"math"
	"math/rand"
	"time"

	"repro/internal/geom"
	"repro/internal/mercator"
)

// Hotspot is one component of the spatial Gaussian mixture a generator
// samples from: a center in mercator meters, an isotropic standard
// deviation, and a mixture weight.
type Hotspot struct {
	Center geom.Point
	Sigma  float64 // meters
	Weight float64
}

// GenConfig parameterizes a synthetic spatio-temporal data set. The
// defaults produced by the dataset constructors (NYCTaxiConfig etc.) are
// calibrated to the spatial skew and temporal periodicity of the paper's
// NYC workloads; see DESIGN.md for the substitution rationale.
type GenConfig struct {
	Name string
	N    int
	Seed int64
	// Bounds clips generated locations; samples falling outside are
	// re-drawn uniformly within it (modelling the data cleaning the paper's
	// pipeline applies).
	Bounds   geom.BBox
	Hotspots []Hotspot
	// Uniform is the probability mass drawn uniformly over Bounds rather
	// than from the mixture (background noise).
	Uniform float64
	// Start/End bound the timestamps.
	Start, End time.Time
	// DiurnalAmplitude in [0,1] scales the day/night cycle: 0 = uniform in
	// time, 1 = strong rush-hour peaks.
	DiurnalAmplitude float64
	// Attr declarations; see AttrSpec.
	AttrSpecs []AttrSpec
	// Dropoffs adds destination coordinates ("dropoff_x"/"dropoff_y"
	// columns, mercator meters) sampled from the same mixture, and derives
	// the "distance" (trip km) and "fare" attributes — when declared — from
	// the actual origin-destination pair instead of the log-normal base,
	// keeping the taxi data self-consistent for OD-flow queries.
	Dropoffs bool
}

// DropoffXAttr and DropoffYAttr name the destination coordinate columns
// generated when GenConfig.Dropoffs is set.
const (
	DropoffXAttr = "dropoff_x"
	DropoffYAttr = "dropoff_y"
)

// AttrSpec declares a synthetic attribute column drawn from a log-normal
// base with optional correlation to distance-from-center (taxi fares grow
// with trip length; complaint severities do not).
type AttrSpec struct {
	Name string
	// Mu, Sigma are the parameters of the log-normal base value.
	Mu, Sigma float64
	// DistanceCoeff adds coeff * (km from the first hotspot) to the value,
	// correlating the attribute with geography.
	DistanceCoeff float64
	// Round truncates values to integers when true (passenger counts).
	Round bool
}

// Generate materializes the configured data set. Generation is
// deterministic for a fixed config.
func Generate(cfg GenConfig) *PointSet {
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := cfg.N
	ps := &PointSet{
		Name: cfg.Name,
		X:    make([]float64, n),
		Y:    make([]float64, n),
		T:    make([]int64, n),
	}
	for _, spec := range cfg.AttrSpecs {
		ps.Attrs = append(ps.Attrs, Column{Name: spec.Name, Values: make([]float64, n)})
	}
	var dropX, dropY []float64
	if cfg.Dropoffs {
		dropX = make([]float64, n)
		dropY = make([]float64, n)
	}
	// Ground meters per mercator meter at the study area's latitude, for
	// trip distances.
	groundRes := mercator.GroundResolution(mercator.Unproject(cfg.Bounds.Center()).Lat)

	totalW := 0.0
	for _, h := range cfg.Hotspots {
		//lint:ignore floataccum a handful of hotspot weights, all O(1) magnitude
		totalW += h.Weight
	}

	start := cfg.Start.Unix()
	dur := cfg.End.Unix() - start
	if dur <= 0 {
		dur = 1
	}
	var center geom.Point
	if len(cfg.Hotspots) > 0 {
		center = cfg.Hotspots[0].Center
	} else {
		center = cfg.Bounds.Center()
	}

	for i := 0; i < n; i++ {
		// Location: mixture sample, redrawn uniformly when out of bounds.
		var p geom.Point
		if totalW == 0 || rng.Float64() < cfg.Uniform {
			p = uniformIn(rng, cfg.Bounds)
		} else {
			h := pickHotspot(rng, cfg.Hotspots, totalW)
			p = geom.Point{
				X: h.Center.X + rng.NormFloat64()*h.Sigma,
				Y: h.Center.Y + rng.NormFloat64()*h.Sigma,
			}
			if !cfg.Bounds.Contains(p) {
				p = uniformIn(rng, cfg.Bounds)
			}
		}
		ps.X[i], ps.Y[i] = p.X, p.Y

		// Time: rejection-sample against the diurnal profile.
		ts := start + rng.Int63n(dur)
		if cfg.DiurnalAmplitude > 0 {
			for tries := 0; tries < 8; tries++ {
				if rng.Float64() < diurnalWeight(ts, cfg.DiurnalAmplitude) {
					break
				}
				ts = start + rng.Int63n(dur)
			}
		}
		ps.T[i] = ts

		// Destination (OD mode): another mixture draw.
		var tripKM float64
		if cfg.Dropoffs {
			var d geom.Point
			if totalW == 0 || rng.Float64() < cfg.Uniform {
				d = uniformIn(rng, cfg.Bounds)
			} else {
				h := pickHotspot(rng, cfg.Hotspots, totalW)
				d = geom.Point{
					X: h.Center.X + rng.NormFloat64()*h.Sigma,
					Y: h.Center.Y + rng.NormFloat64()*h.Sigma,
				}
				if !cfg.Bounds.Contains(d) {
					d = uniformIn(rng, cfg.Bounds)
				}
			}
			dropX[i], dropY[i] = d.X, d.Y
			tripKM = p.Dist(d) * groundRes / 1000
		}

		// Attributes.
		distKM := p.Dist(center) / 1000
		for k, spec := range cfg.AttrSpecs {
			var v float64
			switch {
			case cfg.Dropoffs && spec.Name == "distance":
				// Street distance exceeds the crow-flies trip length.
				v = tripKM * (1.2 + 0.15*rng.NormFloat64())
				if v < 0.1 {
					v = 0.1
				}
			case cfg.Dropoffs && spec.Name == "fare":
				// NYC-style meter: flag drop plus per-km rate plus noise.
				v = 2.5 + 2.2*tripKM*(1+0.1*rng.NormFloat64()) +
					math.Exp(0.2*rng.NormFloat64())
			default:
				v = math.Exp(spec.Mu+spec.Sigma*rng.NormFloat64()) + spec.DistanceCoeff*distKM
			}
			if spec.Round {
				v = math.Max(1, math.Floor(v))
			}
			ps.Attrs[k].Values[i] = v
		}
	}
	if cfg.Dropoffs {
		ps.AddAttr(DropoffXAttr, dropX)
		ps.AddAttr(DropoffYAttr, dropY)
	}
	ps.SortByTime()
	return ps
}

func uniformIn(rng *rand.Rand, b geom.BBox) geom.Point {
	return geom.Point{
		X: b.MinX + rng.Float64()*b.Width(),
		Y: b.MinY + rng.Float64()*b.Height(),
	}
}

func pickHotspot(rng *rand.Rand, hs []Hotspot, totalW float64) Hotspot {
	v := rng.Float64() * totalW
	for _, h := range hs {
		//lint:ignore floataccum weighted-sampling walk over a handful of hotspots
		v -= h.Weight
		if v <= 0 {
			return h
		}
	}
	return hs[len(hs)-1]
}

// diurnalWeight returns an acceptance probability in (0,1] with morning
// (8am) and evening (7pm) peaks, the taxi pickup pattern.
func diurnalWeight(ts int64, amplitude float64) float64 {
	h := float64(ts%86400) / 3600 // UTC hour of day; offset is immaterial
	peak := math.Exp(-sq(h-8)/8) + math.Exp(-sq(h-19)/8)
	w := (1 - amplitude) + amplitude*peak/1.2
	if w > 1 {
		w = 1
	}
	if w < 0.05 {
		w = 0.05
	}
	return w
}

func sq(v float64) float64 { return v * v }

// nycHotspots returns a Manhattan-weighted mixture over the NYC mercator
// bounds: heavy mass in midtown/downtown Manhattan, secondary mass at the
// airports and in brooklyn, matching the strong skew of taxi pickups.
func nycHotspots() []Hotspot {
	ll := func(lng, lat float64) geom.Point {
		return mercator.Project(mercator.LngLat{Lng: lng, Lat: lat})
	}
	return []Hotspot{
		{Center: ll(-73.985, 40.757), Sigma: 1800, Weight: 0.40}, // midtown
		{Center: ll(-74.006, 40.713), Sigma: 1500, Weight: 0.18}, // downtown
		{Center: ll(-73.955, 40.779), Sigma: 1600, Weight: 0.14}, // upper east side
		{Center: ll(-73.778, 40.641), Sigma: 1200, Weight: 0.07}, // JFK
		{Center: ll(-73.874, 40.774), Sigma: 900, Weight: 0.05},  // LGA
		{Center: ll(-73.950, 40.650), Sigma: 2500, Weight: 0.09}, // brooklyn
		{Center: ll(-73.920, 40.760), Sigma: 2000, Weight: 0.07}, // queens west
	}
}

// NYCTaxiConfig returns a generator configuration standing in for the NYC
// yellow-taxi trip records of the given month: fares correlated with trip
// distance from midtown, passenger counts, and strong diurnal structure.
func NYCTaxiConfig(n int, year int, month time.Month, seed int64) GenConfig {
	start := time.Date(year, month, 1, 0, 0, 0, 0, time.UTC)
	return GenConfig{
		Name:             "taxi",
		N:                n,
		Seed:             seed,
		Bounds:           mercator.NYCBounds(),
		Hotspots:         nycHotspots(),
		Uniform:          0.04,
		Start:            start,
		End:              start.AddDate(0, 1, 0),
		DiurnalAmplitude: 0.7,
		Dropoffs:         true,
		AttrSpecs: []AttrSpec{
			{Name: "fare", Mu: 2.3, Sigma: 0.45, DistanceCoeff: 0.9},
			{Name: "distance", Mu: 0.8, Sigma: 0.6, DistanceCoeff: 0.35},
			{Name: "passengers", Mu: 0.3, Sigma: 0.5, Round: true},
		},
	}
}

// NYC311Config stands in for the 311 service-request data set: complaint
// hotspots spread across the boroughs, weak diurnal structure, a severity
// attribute uncorrelated with geography.
func NYC311Config(n int, year int, month time.Month, seed int64) GenConfig {
	ll := func(lng, lat float64) geom.Point {
		return mercator.Project(mercator.LngLat{Lng: lng, Lat: lat})
	}
	start := time.Date(year, month, 1, 0, 0, 0, 0, time.UTC)
	return GenConfig{
		Name:   "311",
		N:      n,
		Seed:   seed,
		Bounds: mercator.NYCBounds(),
		Hotspots: []Hotspot{
			{Center: ll(-73.92, 40.83), Sigma: 3000, Weight: 0.30}, // bronx
			{Center: ll(-73.95, 40.65), Sigma: 3500, Weight: 0.28}, // brooklyn
			{Center: ll(-73.80, 40.72), Sigma: 4000, Weight: 0.22}, // queens
			{Center: ll(-73.98, 40.76), Sigma: 2500, Weight: 0.20}, // manhattan
		},
		Uniform:          0.10,
		Start:            start,
		End:              start.AddDate(0, 1, 0),
		DiurnalAmplitude: 0.3,
		AttrSpecs: []AttrSpec{
			{Name: "severity", Mu: 0.9, Sigma: 0.7},
		},
	}
}

// NYCPhotosConfig stands in for the geotagged-photo data set ([8,10] in the
// paper's intro): extreme concentration at landmarks, no useful attributes
// beyond location and time.
func NYCPhotosConfig(n int, year int, month time.Month, seed int64) GenConfig {
	ll := func(lng, lat float64) geom.Point {
		return mercator.Project(mercator.LngLat{Lng: lng, Lat: lat})
	}
	start := time.Date(year, month, 1, 0, 0, 0, 0, time.UTC)
	return GenConfig{
		Name:   "photos",
		N:      n,
		Seed:   seed,
		Bounds: mercator.NYCBounds(),
		Hotspots: []Hotspot{
			{Center: ll(-73.9855, 40.7580), Sigma: 400, Weight: 0.35}, // times square
			{Center: ll(-73.9654, 40.7829), Sigma: 900, Weight: 0.20}, // central park
			{Center: ll(-74.0445, 40.6892), Sigma: 300, Weight: 0.15}, // liberty island
			{Center: ll(-73.9969, 40.7061), Sigma: 500, Weight: 0.15}, // brooklyn bridge
			{Center: ll(-73.9772, 40.7527), Sigma: 350, Weight: 0.15}, // grand central
		},
		Uniform:          0.08,
		Start:            start,
		End:              start.AddDate(0, 1, 0),
		DiurnalAmplitude: 0.5,
		AttrSpecs: []AttrSpec{
			{Name: "likes", Mu: 1.5, Sigma: 1.2},
		},
	}
}
