package data

import (
	"math"
	"testing"
	"time"

	"repro/internal/geom"
	"repro/internal/mercator"
)

func TestGenerateTaxiBasics(t *testing.T) {
	cfg := NYCTaxiConfig(10000, 2009, time.January, 1)
	ps := Generate(cfg)
	if ps.Len() != 10000 {
		t.Fatalf("Len = %d, want 10000", ps.Len())
	}
	if err := ps.Validate(); err != nil {
		t.Fatal(err)
	}
	if ps.Name != "taxi" {
		t.Errorf("Name = %q", ps.Name)
	}
	// All points inside NYC bounds.
	bounds := mercator.NYCBounds()
	if !bounds.ContainsBBox(ps.Bounds()) {
		t.Errorf("points escape bounds: %v vs %v", ps.Bounds(), bounds)
	}
	// Timestamps inside January 2009 and sorted.
	tmin, tmax, _ := ps.TimeRange()
	jan1 := time.Date(2009, 1, 1, 0, 0, 0, 0, time.UTC).Unix()
	feb1 := time.Date(2009, 2, 1, 0, 0, 0, 0, time.UTC).Unix()
	if tmin < jan1 || tmax >= feb1 {
		t.Errorf("time range [%d,%d] outside January 2009", tmin, tmax)
	}
	for i := 1; i < ps.Len(); i++ {
		if ps.T[i-1] > ps.T[i] {
			t.Fatal("generated set should be time-sorted")
		}
	}
	// Attribute columns present and positive.
	for _, name := range []string{"fare", "distance", "passengers"} {
		col := ps.Attr(name)
		if col == nil {
			t.Fatalf("missing attr %q", name)
		}
		for _, v := range col[:100] {
			if v <= 0 {
				t.Fatalf("attr %q has non-positive value %v", name, v)
			}
		}
	}
	// Passengers are integral.
	for _, v := range ps.Attr("passengers")[:200] {
		if v != math.Floor(v) {
			t.Fatalf("passengers %v not integral", v)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(NYCTaxiConfig(500, 2009, time.January, 7))
	b := Generate(NYCTaxiConfig(500, 2009, time.January, 7))
	for i := range a.X {
		if a.X[i] != b.X[i] || a.Y[i] != b.Y[i] || a.T[i] != b.T[i] {
			t.Fatalf("row %d differs between identical configs", i)
		}
	}
	c := Generate(NYCTaxiConfig(500, 2009, time.January, 8))
	same := true
	for i := range a.X {
		if a.X[i] != c.X[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds should produce different data")
	}
}

func TestGenerateSpatialSkew(t *testing.T) {
	// The Manhattan hotspots carry most of the mass: a 6km box around
	// midtown must hold far more than its area share of points.
	ps := Generate(NYCTaxiConfig(20000, 2009, time.January, 3))
	midtown := mercator.Project(mercator.LngLat{Lng: -73.985, Lat: 40.757})
	box := geom.BBox{
		MinX: midtown.X - 3000, MinY: midtown.Y - 3000,
		MaxX: midtown.X + 3000, MaxY: midtown.Y + 3000,
	}
	in := 0
	for i := range ps.X {
		if box.Contains(geom.Point{X: ps.X[i], Y: ps.Y[i]}) {
			in++
		}
	}
	areaShare := box.Area() / mercator.NYCBounds().Area()
	share := float64(in) / float64(ps.Len())
	if share < 10*areaShare {
		t.Errorf("midtown share %.3f should dwarf area share %.5f", share, areaShare)
	}
	if share < 0.15 {
		t.Errorf("midtown share %.3f, want >= 0.15 (strong skew)", share)
	}
}

func TestGenerateDiurnalPattern(t *testing.T) {
	cfg := NYCTaxiConfig(30000, 2009, time.January, 5)
	ps := Generate(cfg)
	// Rush hours (7-9, 18-20 UTC-as-local) must out-populate dead hours (2-4).
	rush, dead := 0, 0
	for _, ts := range ps.T {
		h := (ts % 86400) / 3600
		switch {
		case h >= 7 && h < 9, h >= 18 && h < 20:
			rush++
		case h >= 2 && h < 4:
			dead++
		}
	}
	if rush <= dead*2 {
		t.Errorf("rush=%d dead=%d: diurnal cycle too weak", rush, dead)
	}
}

func TestGenerateFareDistanceCorrelation(t *testing.T) {
	ps := Generate(NYCTaxiConfig(20000, 2009, time.January, 11))
	center := mercator.Project(mercator.LngLat{Lng: -73.985, Lat: 40.757})
	fare := ps.Attr("fare")
	// Mean fare for far points (>8km) must exceed mean for near (<2km).
	var nearSum, farSum float64
	var nearN, farN int
	for i := range ps.X {
		d := geom.Point{X: ps.X[i], Y: ps.Y[i]}.Dist(center) / 1000
		if d < 2 {
			nearSum += fare[i]
			nearN++
		} else if d > 8 {
			farSum += fare[i]
			farN++
		}
	}
	if nearN == 0 || farN == 0 {
		t.Fatal("degenerate spatial split")
	}
	if farSum/float64(farN) <= nearSum/float64(nearN) {
		t.Errorf("fares should grow with distance: near=%.2f far=%.2f",
			nearSum/float64(nearN), farSum/float64(farN))
	}
}

func TestGenerateDropoffs(t *testing.T) {
	ps := Generate(NYCTaxiConfig(5000, 2009, time.January, 21))
	dx := ps.Attr(DropoffXAttr)
	dy := ps.Attr(DropoffYAttr)
	if dx == nil || dy == nil {
		t.Fatal("taxi data should carry dropoff columns")
	}
	bounds := mercator.NYCBounds()
	for i := 0; i < 500; i++ {
		if !bounds.Contains(geom.Point{X: dx[i], Y: dy[i]}) {
			t.Fatalf("dropoff %d outside NYC: (%v,%v)", i, dx[i], dy[i])
		}
	}
	// Fares must track trip length (origin->destination), not noise: long
	// trips cost more than short ones on average.
	fare := ps.Attr("fare")
	res := mercator.GroundResolution(mercator.NYC.CenterLat)
	var shortSum, longSum float64
	var shortN, longN int
	for i := range fare {
		km := geom.Point{X: ps.X[i], Y: ps.Y[i]}.
			Dist(geom.Point{X: dx[i], Y: dy[i]}) * res / 1000
		if km < 2 {
			shortSum += fare[i]
			shortN++
		} else if km > 10 {
			longSum += fare[i]
			longN++
		}
	}
	if shortN == 0 || longN == 0 {
		t.Fatal("degenerate trip-length split")
	}
	if longSum/float64(longN) <= 2*shortSum/float64(shortN) {
		t.Errorf("long trips should cost much more: short=%.2f long=%.2f",
			shortSum/float64(shortN), longSum/float64(longN))
	}
	// Distance column tracks the same trips.
	dist := ps.Attr("distance")
	for i := 0; i < 200; i++ {
		km := geom.Point{X: ps.X[i], Y: ps.Y[i]}.
			Dist(geom.Point{X: dx[i], Y: dy[i]}) * res / 1000
		if dist[i] < km*0.5-0.2 || dist[i] > km*2.5+0.5 {
			t.Fatalf("trip %d: distance attr %v vs crow-flies %v km", i, dist[i], km)
		}
	}
}

func TestOtherDatasets(t *testing.T) {
	for _, cfg := range []GenConfig{
		NYC311Config(2000, 2011, time.June, 2),
		NYCPhotosConfig(2000, 2012, time.July, 2),
	} {
		ps := Generate(cfg)
		if ps.Len() != 2000 {
			t.Errorf("%s: Len = %d", cfg.Name, ps.Len())
		}
		if err := ps.Validate(); err != nil {
			t.Errorf("%s: %v", cfg.Name, err)
		}
		if len(ps.Attrs) == 0 {
			t.Errorf("%s: no attributes", cfg.Name)
		}
	}
}

func TestGenerateNoHotspots(t *testing.T) {
	cfg := GenConfig{
		Name: "uniform", N: 1000, Seed: 1,
		Bounds: geom.BBox{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100},
		Start:  time.Unix(0, 0), End: time.Unix(1000, 0),
	}
	ps := Generate(cfg)
	if ps.Len() != 1000 {
		t.Fatalf("Len = %d", ps.Len())
	}
	// Roughly uniform: each quadrant holds 15-35%.
	quad := [4]int{}
	for i := range ps.X {
		q := 0
		if ps.X[i] > 50 {
			q |= 1
		}
		if ps.Y[i] > 50 {
			q |= 2
		}
		quad[q]++
	}
	for q, n := range quad {
		if n < 150 || n > 350 {
			t.Errorf("quadrant %d has %d points, want 150-350", q, n)
		}
	}
}
