package data

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadCSV asserts the CSV decoder is total: arbitrary input either
// decodes into a valid point set or errors, never panics, and anything
// decoded re-encodes and decodes to the same shape.
func FuzzReadCSV(f *testing.F) {
	f.Add("x,y,t\n1,2,3\n")
	f.Add("x,y,t,fare\n1.5,-2.25,100,9.99\n3,4,200,0\n")
	f.Add("a,b\n1,2\n")
	f.Add("x,y,t\n1,2\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, in string) {
		ps, err := ReadCSV(strings.NewReader(in), "fuzz")
		if err != nil {
			return
		}
		if err := ps.Validate(); err != nil {
			t.Fatalf("decoded point set invalid: %v", err)
		}
		var buf bytes.Buffer
		if err := WriteCSV(&buf, ps); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		ps2, err := ReadCSV(&buf, "fuzz2")
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if ps2.Len() != ps.Len() || len(ps2.Attrs) != len(ps.Attrs) {
			t.Fatalf("round trip changed shape: %d/%d vs %d/%d",
				ps2.Len(), len(ps2.Attrs), ps.Len(), len(ps.Attrs))
		}
	})
}

// FuzzReadGeoJSON asserts the GeoJSON decoder is total and round-trips.
func FuzzReadGeoJSON(f *testing.F) {
	f.Add(`{"type":"FeatureCollection","features":[{"type":"Feature",
		"properties":{"id":1,"name":"a"},"geometry":{"type":"Polygon",
		"coordinates":[[[0,0],[4,0],[4,4],[0,4],[0,0]]]}}]}`)
	f.Add(`{"type":"FeatureCollection","features":[]}`)
	f.Add(`{"type":"Point"}`)
	f.Add(`{`)
	f.Add(``)
	f.Fuzz(func(t *testing.T, in string) {
		rs, err := ReadGeoJSON(strings.NewReader(in), "fuzz")
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteGeoJSON(&buf, rs); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		rs2, err := ReadGeoJSON(&buf, "fuzz2")
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if rs2.Len() != rs.Len() {
			t.Fatalf("round trip changed region count: %d vs %d", rs2.Len(), rs.Len())
		}
	})
}
