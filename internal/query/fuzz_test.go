package query

import "testing"

// FuzzParse asserts the statement parser is total: any input either parses
// or errors, never panics, and anything that parses re-parses from its own
// String() rendering.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"SELECT COUNT(*) FROM taxi, neighborhoods GROUP BY id",
		"SELECT AVG(fare) FROM a, b WHERE fare BETWEEN 5 AND 30",
		"SELECT MAX(x) FROM p, r WHERE time BETWEEN 0 AND 86400",
		"select sum(y) from p , r where inside and y between -1 and 2.5",
		"SELECT",
		"((((",
		"SELECT COUNT(*) FROM a, b WHERE fare BETWEEN one AND two",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, stmt string) {
		q, err := Parse(stmt)
		if err != nil {
			return
		}
		// Round trip: a successfully parsed query must re-parse.
		q2, err := Parse(q.String())
		if err != nil {
			t.Fatalf("re-parse of %q (from %q) failed: %v", q.String(), stmt, err)
		}
		if q2.Agg != q.Agg || len(q2.Filters) != len(q.Filters) {
			t.Fatalf("round trip drifted: %+v vs %+v", q2, q)
		}
	})
}
