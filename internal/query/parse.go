// Package query provides the SQL-like front end over the spatial
// aggregation engines: a parser for the paper's query form
//
//	SELECT AGG(a_i) FROM P, R
//	WHERE P.loc INSIDE R.geometry [AND filterCondition]*
//	GROUP BY R.id
//
// a planner that routes each query to the cheapest capable engine
// (pre-aggregation cube for canned queries, Raster Join for everything
// else), and an executor that times the run.
package query

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/core"
)

// Query is the parsed form of a spatial aggregation statement.
type Query struct {
	Agg     core.Agg
	Attr    string // aggregated attribute ("" for COUNT)
	Points  string // point data set name
	Regions string // region layer name
	Filters []core.Filter
	Time    *core.TimeFilter
}

// String renders the query back in its SQL form.
func (q Query) String() string {
	var b strings.Builder
	arg := "*"
	if q.Attr != "" {
		arg = q.Attr
	}
	fmt.Fprintf(&b, "SELECT %s(%s) FROM %s, %s WHERE %s.loc INSIDE %s.geometry",
		q.Agg, arg, q.Points, q.Regions, q.Points, q.Regions)
	for _, f := range q.Filters {
		fmt.Fprintf(&b, " AND %s BETWEEN %g AND %g", f.Attr, f.Min, f.Max)
	}
	if q.Time != nil {
		fmt.Fprintf(&b, " AND time BETWEEN %d AND %d", q.Time.Start, q.Time.End)
	}
	b.WriteString(" GROUP BY id")
	return b.String()
}

// Parse reads the SQL-like dialect:
//
//	SELECT COUNT(*) FROM taxi, neighborhoods GROUP BY id
//	SELECT AVG(fare) FROM taxi, neighborhoods
//	    WHERE INSIDE AND fare BETWEEN 5 AND 30
//	    AND time BETWEEN 1230768000 AND 1233446400 GROUP BY id
//
// The INSIDE predicate and GROUP BY clause are implied by the query class
// and may be omitted; filter conditions are `attr BETWEEN lo AND hi` with
// half-open [lo, hi) semantics, and `time BETWEEN a AND b` maps to the time
// filter.
func Parse(s string) (Query, error) {
	toks := tokenize(s)
	p := &parser{toks: toks}
	q := Query{}

	if err := p.expectWord("SELECT"); err != nil {
		return q, err
	}
	aggName, err := p.word("aggregate function")
	if err != nil {
		return q, err
	}
	switch strings.ToUpper(aggName) {
	case "COUNT":
		q.Agg = core.Count
	case "SUM":
		q.Agg = core.Sum
	case "AVG":
		q.Agg = core.Avg
	case "MIN":
		q.Agg = core.Min
	case "MAX":
		q.Agg = core.Max
	default:
		return q, fmt.Errorf("query: unknown aggregate %q (want COUNT, SUM, AVG, MIN or MAX)", aggName)
	}
	if err := p.expect("("); err != nil {
		return q, err
	}
	arg, err := p.word("aggregate argument")
	if err != nil {
		return q, err
	}
	if arg != "*" {
		q.Attr = arg
	} else if q.Agg != core.Count {
		return q, fmt.Errorf("query: %v(*) needs an attribute", q.Agg)
	}
	if err := p.expect(")"); err != nil {
		return q, err
	}

	if err := p.expectWord("FROM"); err != nil {
		return q, err
	}
	if q.Points, err = p.word("point set name"); err != nil {
		return q, err
	}
	if err := p.expect(","); err != nil {
		return q, err
	}
	if q.Regions, err = p.word("region set name"); err != nil {
		return q, err
	}

	// Optional WHERE clause.
	if p.acceptWord("WHERE") {
		first := true
		for {
			if !first && !p.acceptWord("AND") {
				break
			}
			first = false
			if p.done() {
				return q, fmt.Errorf("query: dangling AND")
			}
			// `P.loc INSIDE R.geometry` or bare `INSIDE` — the implied join
			// predicate; skip it.
			if p.peekContains("INSIDE") {
				p.skipThroughWord("INSIDE")
				// Optionally consume the `R.geometry` operand.
				if w, ok := p.peekWord(); ok && !isKeyword(w) {
					p.next()
				}
				continue
			}
			attr, err := p.word("filter attribute")
			if err != nil {
				return q, err
			}
			if err := p.expectWord("BETWEEN"); err != nil {
				return q, err
			}
			loTok, err := p.word("lower bound")
			if err != nil {
				return q, err
			}
			if err := p.expectWord("AND"); err != nil {
				return q, err
			}
			hiTok, err := p.word("upper bound")
			if err != nil {
				return q, err
			}
			if strings.EqualFold(attr, "time") {
				start, err1 := strconv.ParseInt(loTok, 10, 64)
				end, err2 := strconv.ParseInt(hiTok, 10, 64)
				if err1 != nil || err2 != nil {
					return q, fmt.Errorf("query: time bounds must be unix seconds: %s..%s", loTok, hiTok)
				}
				q.Time = &core.TimeFilter{Start: start, End: end}
				continue
			}
			lo, err1 := strconv.ParseFloat(loTok, 64)
			hi, err2 := strconv.ParseFloat(hiTok, 64)
			if err1 != nil || err2 != nil {
				return q, fmt.Errorf("query: bounds for %q must be numeric: %s..%s", attr, loTok, hiTok)
			}
			q.Filters = append(q.Filters, core.Filter{Attr: attr, Min: lo, Max: hi})
		}
	}

	// Optional GROUP BY id.
	if p.acceptWord("GROUP") {
		if err := p.expectWord("BY"); err != nil {
			return q, err
		}
		if _, err := p.word("group key"); err != nil {
			return q, err
		}
	}
	if !p.done() {
		return q, fmt.Errorf("query: unexpected trailing input %q", p.rest())
	}
	return q, nil
}

func isKeyword(w string) bool {
	switch strings.ToUpper(w) {
	case "AND", "WHERE", "GROUP", "BY", "BETWEEN", "INSIDE":
		return true
	}
	return false
}

// tokenize splits on whitespace and the punctuation (),.
func tokenize(s string) []string {
	var toks []string
	var cur strings.Builder
	flush := func() {
		if cur.Len() > 0 {
			toks = append(toks, cur.String())
			cur.Reset()
		}
	}
	for _, r := range s {
		switch r {
		case ' ', '\t', '\n', '\r':
			flush()
		case '(', ')', ',':
			flush()
			toks = append(toks, string(r))
		default:
			cur.WriteRune(r)
		}
	}
	flush()
	return toks
}

type parser struct {
	toks []string
	pos  int
}

func (p *parser) done() bool { return p.pos >= len(p.toks) }

func (p *parser) next() string {
	t := p.toks[p.pos]
	p.pos++
	return t
}

func (p *parser) rest() string { return strings.Join(p.toks[p.pos:], " ") }

func (p *parser) peekWord() (string, bool) {
	if p.done() {
		return "", false
	}
	return p.toks[p.pos], true
}

func (p *parser) peekContains(kw string) bool {
	if w, ok := p.peekWord(); ok {
		// Allows both `INSIDE` and `P.loc` followed by `INSIDE`.
		if strings.EqualFold(w, kw) {
			return true
		}
		if p.pos+1 < len(p.toks) && strings.EqualFold(p.toks[p.pos+1], kw) &&
			strings.Contains(w, ".") {
			return true
		}
	}
	return false
}

func (p *parser) skipThroughWord(kw string) {
	for !p.done() {
		if strings.EqualFold(p.next(), kw) {
			return
		}
	}
}

func (p *parser) word(what string) (string, error) {
	if p.done() {
		return "", fmt.Errorf("query: expected %s, got end of input", what)
	}
	t := p.next()
	if t == "(" || t == ")" || t == "," {
		return "", fmt.Errorf("query: expected %s, got %q", what, t)
	}
	return t, nil
}

func (p *parser) expect(tok string) error {
	if p.done() {
		return fmt.Errorf("query: expected %q, got end of input", tok)
	}
	if t := p.next(); t != tok {
		return fmt.Errorf("query: expected %q, got %q", tok, t)
	}
	return nil
}

func (p *parser) expectWord(kw string) error {
	if p.done() {
		return fmt.Errorf("query: expected %s, got end of input", kw)
	}
	if t := p.next(); !strings.EqualFold(t, kw) {
		return fmt.Errorf("query: expected %s, got %q", kw, t)
	}
	return nil
}

func (p *parser) acceptWord(kw string) bool {
	if w, ok := p.peekWord(); ok && strings.EqualFold(w, kw) {
		p.pos++
		return true
	}
	return false
}
