package query

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/cube"
	"repro/internal/data"
	"repro/internal/geom"
)

func TestParseMinimal(t *testing.T) {
	q, err := Parse("SELECT COUNT(*) FROM taxi, neighborhoods GROUP BY id")
	if err != nil {
		t.Fatal(err)
	}
	if q.Agg != core.Count || q.Attr != "" || q.Points != "taxi" || q.Regions != "neighborhoods" {
		t.Errorf("parsed = %+v", q)
	}
	if len(q.Filters) != 0 || q.Time != nil {
		t.Error("minimal query should have no filters")
	}
}

func TestParseFull(t *testing.T) {
	stmt := `SELECT AVG(fare) FROM taxi, nbhd
		WHERE taxi.loc INSIDE nbhd.geometry
		AND fare BETWEEN 5 AND 30
		AND time BETWEEN 1230768000 AND 1233446400
		GROUP BY id`
	q, err := Parse(stmt)
	if err != nil {
		t.Fatal(err)
	}
	if q.Agg != core.Avg || q.Attr != "fare" {
		t.Errorf("agg = %v(%s)", q.Agg, q.Attr)
	}
	if len(q.Filters) != 1 || q.Filters[0] != (core.Filter{Attr: "fare", Min: 5, Max: 30}) {
		t.Errorf("filters = %+v", q.Filters)
	}
	if q.Time == nil || q.Time.Start != 1230768000 || q.Time.End != 1233446400 {
		t.Errorf("time = %+v", q.Time)
	}
}

func TestParseBareInside(t *testing.T) {
	q, err := Parse("SELECT SUM(fare) FROM taxi, nbhd WHERE INSIDE AND fare BETWEEN 1 AND 2")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Filters) != 1 {
		t.Errorf("filters = %+v", q.Filters)
	}
}

func TestParseMinMax(t *testing.T) {
	q, err := Parse("SELECT MIN(fare) FROM taxi, nbhd")
	if err != nil {
		t.Fatal(err)
	}
	if q.Agg != core.Min || q.Attr != "fare" {
		t.Errorf("parsed = %+v", q)
	}
	q, err = Parse("SELECT max(fare) FROM taxi, nbhd GROUP BY id")
	if err != nil {
		t.Fatal(err)
	}
	if q.Agg != core.Max {
		t.Errorf("parsed = %+v", q)
	}
	if _, err := Parse("SELECT MIN(*) FROM taxi, nbhd"); err == nil {
		t.Error("MIN(*) should fail")
	}
}

func TestParseCaseInsensitiveKeywords(t *testing.T) {
	q, err := Parse("select count(*) from a, b where inside group by id")
	if err != nil {
		t.Fatal(err)
	}
	if q.Points != "a" || q.Regions != "b" {
		t.Errorf("parsed = %+v", q)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		stmt, want string
	}{
		{"", "SELECT"},
		{"SELECT MEDIAN(x) FROM a, b", "unknown aggregate"},
		{"SELECT SUM(*) FROM a, b", "needs an attribute"},
		{"SELECT COUNT(*) FROM a", `expected ","`},
		{"SELECT COUNT(*) FROM a, b WHERE fare BETWEEN x AND 3", "numeric"},
		{"SELECT COUNT(*) FROM a, b WHERE time BETWEEN 0 AND oops", "unix seconds"},
		{"SELECT COUNT(*) FROM a, b WHERE fare BETWEEN 1 AND 2 AND", "dangling AND"},
		{"SELECT COUNT(*) FROM a, b GROUP BY id extra stuff", "trailing"},
		{"SELECT COUNT(*) FROM a, b WHERE fare NEAR 3", "BETWEEN"},
	}
	for _, c := range cases {
		_, err := Parse(c.stmt)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("Parse(%q) err = %v, want mention of %q", c.stmt, err, c.want)
		}
	}
}

func TestQueryStringRoundTrip(t *testing.T) {
	stmt := "SELECT AVG(fare) FROM taxi, nbhd WHERE fare BETWEEN 5 AND 30 AND time BETWEEN 100 AND 200"
	q, err := Parse(stmt)
	if err != nil {
		t.Fatal(err)
	}
	q2, err := Parse(q.String())
	if err != nil {
		t.Fatalf("re-parsing %q: %v", q.String(), err)
	}
	if q2.Agg != q.Agg || q2.Attr != q.Attr || len(q2.Filters) != len(q.Filters) ||
		(q2.Time == nil) != (q.Time == nil) {
		t.Errorf("round trip: %+v vs %+v", q2, q)
	}
}

// mapCatalog is a test Catalog.
type mapCatalog struct {
	points  map[string]*data.PointSet
	regions map[string]*data.RegionSet
}

func (c *mapCatalog) PointSet(n string) (*data.PointSet, bool) {
	p, ok := c.points[n]
	return p, ok
}
func (c *mapCatalog) RegionSet(n string) (*data.RegionSet, bool) {
	r, ok := c.regions[n]
	return r, ok
}

func planScene(t *testing.T) (*mapCatalog, *data.PointSet, *data.RegionSet) {
	t.Helper()
	bounds := geom.BBox{MinX: 0, MinY: 0, MaxX: 1000, MaxY: 1000}
	rng := rand.New(rand.NewSource(5))
	n := 2000
	ps := &data.PointSet{Name: "taxi",
		X: make([]float64, n), Y: make([]float64, n), T: make([]int64, n)}
	fares := make([]float64, n)
	for i := 0; i < n; i++ {
		ps.X[i] = rng.Float64() * 1000
		ps.Y[i] = rng.Float64() * 1000
		ps.T[i] = int64(rng.Intn(7200))
		fares[i] = rng.Float64() * 40
	}
	ps.Attrs = []data.Column{{Name: "fare", Values: fares}}
	ps.SortByTime()
	rs := data.VoronoiRegions("nbhd", bounds, 10, 6, data.VoronoiOptions{})
	return &mapCatalog{
		points:  map[string]*data.PointSet{"taxi": ps},
		regions: map[string]*data.RegionSet{"nbhd": rs},
	}, ps, rs
}

func TestPlannerRoutesCannedToCube(t *testing.T) {
	cat, ps, rs := planScene(t)
	c, err := cube.Build(ps, cube.Config{Regions: rs, TimeBin: 3600, Attrs: []string{"fare"}})
	if err != nil {
		t.Fatal(err)
	}
	pl := NewPlanner(core.NewRasterJoin(core.WithResolution(256)))
	pl.AddCube(c)

	q, _ := Parse("SELECT COUNT(*) FROM taxi, nbhd")
	plan, err := pl.Plan(q, cat)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Joiner.Name() != "pre-aggregation-cube" {
		t.Errorf("canned query routed to %s, want cube", plan.Joiner.Name())
	}
	// Aligned time window also goes to the cube.
	q, _ = Parse("SELECT SUM(fare) FROM taxi, nbhd WHERE time BETWEEN 0 AND 3600")
	plan, err = pl.Plan(q, cat)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Joiner.Name() != "pre-aggregation-cube" {
		t.Errorf("aligned window routed to %s, want cube", plan.Joiner.Name())
	}
}

func TestPlannerRoutesAdHocToRaster(t *testing.T) {
	cat, ps, rs := planScene(t)
	c, _ := cube.Build(ps, cube.Config{Regions: rs, TimeBin: 3600, Attrs: []string{"fare"}})
	pl := NewPlanner(core.NewRasterJoin(core.WithResolution(256)))
	pl.AddCube(c)

	for _, stmt := range []string{
		"SELECT COUNT(*) FROM taxi, nbhd WHERE fare BETWEEN 5 AND 20",     // ad-hoc filter
		"SELECT COUNT(*) FROM taxi, nbhd WHERE time BETWEEN 100 AND 3700", // misaligned
	} {
		q, err := Parse(stmt)
		if err != nil {
			t.Fatal(err)
		}
		plan, err := pl.Plan(q, cat)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.HasPrefix(plan.Joiner.Name(), "raster-join") {
			t.Errorf("%q routed to %s, want raster join", stmt, plan.Joiner.Name())
		}
	}
}

func TestPlannerErrors(t *testing.T) {
	cat, _, _ := planScene(t)
	pl := NewPlanner(core.NewRasterJoin())
	if _, err := pl.Plan(Query{Points: "nope", Regions: "nbhd"}, cat); err == nil {
		t.Error("unknown point set should fail")
	}
	if _, err := pl.Plan(Query{Points: "taxi", Regions: "nope"}, cat); err == nil {
		t.Error("unknown region set should fail")
	}
	q, _ := Parse("SELECT SUM(nope) FROM taxi, nbhd")
	if _, err := pl.Plan(q, cat); err == nil {
		t.Error("unknown attribute should fail validation at plan time")
	}
	// No engines at all.
	empty := &Planner{}
	q, _ = Parse("SELECT COUNT(*) FROM taxi, nbhd")
	if _, err := empty.Plan(q, cat); err == nil {
		t.Error("engine-less planner should fail")
	}
}

func TestRunEndToEndCubeMatchesRaster(t *testing.T) {
	cat, ps, rs := planScene(t)
	c, _ := cube.Build(ps, cube.Config{Regions: rs, TimeBin: 3600})
	withCube := NewPlanner(core.NewRasterJoin(core.WithMode(core.Accurate), core.WithResolution(512)))
	withCube.AddCube(c)
	noCube := NewPlanner(core.NewRasterJoin(core.WithMode(core.Accurate), core.WithResolution(512)))

	stmt := "SELECT COUNT(*) FROM taxi, nbhd GROUP BY id"
	a, err := Run(stmt, withCube, cat)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(stmt, noCube, cat)
	if err != nil {
		t.Fatal(err)
	}
	if a.Result.Algorithm != "pre-aggregation-cube" {
		t.Errorf("cube planner used %s", a.Result.Algorithm)
	}
	if !strings.HasPrefix(b.Result.Algorithm, "raster-join-accurate") {
		t.Errorf("raster planner used %s", b.Result.Algorithm)
	}
	for k := range a.Result.Stats {
		if a.Result.Stats[k].Count != b.Result.Stats[k].Count {
			t.Fatalf("region %d: cube %d vs accurate raster %d",
				k, a.Result.Stats[k].Count, b.Result.Stats[k].Count)
		}
	}
	if a.Elapsed <= 0 || b.Elapsed <= 0 {
		t.Error("elapsed times should be positive")
	}
}

func TestExactOverride(t *testing.T) {
	cat, _, _ := planScene(t)
	pl := NewPlanner(core.NewRasterJoin())
	pl.Exact = core.NewRasterJoin(core.WithMode(core.Accurate))
	q, _ := Parse("SELECT COUNT(*) FROM taxi, nbhd")
	plan, err := pl.Plan(q, cat)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan.Joiner.Name(), "accurate") {
		t.Errorf("exact override not applied: %s", plan.Joiner.Name())
	}
}
