package query

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/cube"
	"repro/internal/data"
	"repro/internal/geoblocks"
	"repro/internal/tcache"
	"repro/internal/trace"
)

// Catalog resolves data set names to their contents. internal/urbane's
// registry implements it.
type Catalog interface {
	PointSet(name string) (*data.PointSet, bool)
	RegionSet(name string) (*data.RegionSet, bool)
}

// SourceCatalog is an optional Catalog extension: a catalog that can also
// resolve a data set name to a columnar block source (e.g. an out-of-core
// segment store). When the catalog provides one, the planner attaches it to
// the request so the raster engine executes block-at-a-time with zone-map
// pruning instead of scanning the in-RAM arrays; the in-RAM set stays
// resolved alongside for engines that need random access (cubes, geoblocks).
type SourceCatalog interface {
	PointSource(name string) (data.PointSource, bool)
}

// ShardRouter is the planner's view of a scatter-gather coordinator
// (internal/shard.Coordinator implements it). CanServe rejects requests
// whose fold would not decompose bit-exactly across shards; those fall
// back to the plain raster path.
type ShardRouter interface {
	core.Joiner
	CanServe(req core.Request) error
}

// Plan is a routed, ready-to-execute query.
type Plan struct {
	Query   Query
	Request core.Request
	Joiner  core.Joiner
	// Reason explains the routing decision for observability.
	Reason string
}

// Planner routes queries: pre-aggregation cubes answer their canned family
// in microseconds; everything else — ad-hoc filters, foreign layers,
// misaligned windows — goes to Raster Join, which is the paper's point.
type Planner struct {
	// Cubes are consulted in order; the first that can serve wins.
	Cubes []*cube.Cube
	// GeoBlocks, when non-nil, answers unfiltered arbitrary-polygon
	// aggregation from the pre-aggregated hierarchy (interior cells from
	// stored aggregates, boundary fringe refined exactly). Consulted
	// after the cubes and before the raster engine.
	GeoBlocks *geoblocks.Engine
	// Slabs, when non-nil, answers slab-aligned time-windowed aggregation
	// as a chronological fold of cached slab partials (incremental temporal
	// view maintenance). Consulted after geoblocks — which rejects
	// time-filtered requests, so the two never compete — and before the
	// raster engine.
	Slabs *tcache.Joiner
	// Raster answers everything the cubes cannot. Required.
	Raster *core.RasterJoin
	// Shards, when non-nil, replaces the local raster path with sharded
	// scatter-gather execution for requests that decompose bit-exactly
	// (ShardRouter.CanServe). Because sharded results are byte-identical
	// to the local path, this routing keeps the raster Reason string:
	// topology is an execution detail, not a different answer.
	Shards ShardRouter
	// Exact, when non-nil, replaces Raster for queries that demand exact
	// results (Plan with exact=true).
	Exact core.Joiner
}

// NewPlanner returns a planner over the given raster joiner.
func NewPlanner(raster *core.RasterJoin) *Planner {
	return &Planner{Raster: raster}
}

// AddCube registers a pre-aggregation cube.
func (pl *Planner) AddCube(c *cube.Cube) { pl.Cubes = append(pl.Cubes, c) }

// Plan resolves names against the catalog and routes the query.
func (pl *Planner) Plan(q Query, cat Catalog) (*Plan, error) {
	ps, ok := cat.PointSet(q.Points)
	if !ok {
		return nil, fmt.Errorf("query: unknown point set %q", q.Points)
	}
	rs, ok := cat.RegionSet(q.Regions)
	if !ok {
		return nil, fmt.Errorf("query: unknown region set %q", q.Regions)
	}
	req := core.Request{
		Points:  ps,
		Regions: rs,
		Agg:     q.Agg,
		Attr:    q.Attr,
		Filters: q.Filters,
		Time:    q.Time,
	}
	if sc, ok := cat.(SourceCatalog); ok {
		if src, found := sc.PointSource(q.Points); found {
			req.Source = src
		}
	}
	if err := req.Validate(); err != nil {
		return nil, err
	}
	for _, c := range pl.Cubes {
		if err := c.CanServe(req); err == nil {
			return &Plan{Query: q, Request: req, Joiner: c,
				Reason: "canned query served from pre-aggregation"}, nil
		}
	}
	if pl.GeoBlocks != nil && pl.Exact == nil && pl.GeoBlocks.CanServe(req) == nil {
		return &Plan{Query: q, Request: req, Joiner: pl.GeoBlocks,
			Reason: "unfiltered polygon aggregation served from geoblocks hierarchy"}, nil
	}
	if pl.Slabs != nil && pl.Exact == nil && pl.Slabs.CanServe(req) == nil {
		return &Plan{Query: q, Request: req, Joiner: pl.Slabs,
			Reason: "time-windowed aggregation folded from cached slab partials"}, nil
	}
	if pl.Raster == nil {
		return nil, fmt.Errorf("query: no engine can serve %q", q.String())
	}
	reason := "ad-hoc query routed to raster join"
	var j core.Joiner = pl.Raster
	if pl.Shards != nil && pl.Exact == nil && pl.Shards.CanServe(req) == nil {
		j = pl.Shards
	}
	if pl.Exact != nil {
		j = pl.Exact
		reason = "exact engine override"
	}
	return &Plan{Query: q, Request: req, Joiner: j, Reason: reason}, nil
}

// Execution is a timed query result.
type Execution struct {
	Plan    *Plan
	Result  *core.Result
	Elapsed time.Duration
}

// Execute runs the plan and times it.
func Execute(p *Plan) (*Execution, error) {
	return ExecuteContext(context.Background(), p)
}

// ExecuteContext runs the plan under the request context: a joiner that
// supports mid-flight cancellation is aborted when ctx ends, and the
// execute stage is recorded on the context's trace.
func ExecuteContext(ctx context.Context, p *Plan) (*Execution, error) {
	sp := trace.FromContext(ctx).Start("execute")
	defer sp.End()
	start := time.Now()
	res, err := core.JoinContext(ctx, p.Joiner, p.Request)
	if err != nil {
		// Cancellation and deadline errors pass through unwrapped so the
		// server can map them to their HTTP statuses.
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		return nil, fmt.Errorf("query: executing with %s: %w", p.Joiner.Name(), err)
	}
	return &Execution{Plan: p, Result: res, Elapsed: time.Since(start)}, nil
}

// Run parses, plans, and executes a statement in one step.
func Run(stmt string, pl *Planner, cat Catalog) (*Execution, error) {
	return RunContext(context.Background(), stmt, pl, cat)
}

// RunContext parses, plans, and executes a statement under the request
// context, tracing each stage (parse, plan, execute).
func RunContext(ctx context.Context, stmt string, pl *Planner, cat Catalog) (*Execution, error) {
	tr := trace.FromContext(ctx)
	sp := tr.Start("parse")
	q, err := Parse(stmt)
	sp.End()
	if err != nil {
		return nil, err
	}
	sp = tr.Start("plan")
	plan, err := pl.Plan(q, cat)
	sp.End()
	if err != nil {
		return nil, err
	}
	return ExecuteContext(ctx, plan)
}
