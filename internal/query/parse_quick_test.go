package query

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/core"
)

// Property: String() of any well-formed query re-parses to an equivalent
// query (parser/printer round trip).
func TestParseStringRoundTripProperty(t *testing.T) {
	f := func(aggSel uint8, nf uint8, mins []int16, widths []uint16,
		timed bool, t0 int32, dur uint16) bool {

		q := Query{Points: "pts", Regions: "regs"}
		switch aggSel % 3 {
		case 0:
			q.Agg = core.Count
		case 1:
			q.Agg, q.Attr = core.Sum, "a"
		case 2:
			q.Agg, q.Attr = core.Avg, "b"
		}
		n := int(nf % 4)
		for i := 0; i < n && i < len(mins) && i < len(widths); i++ {
			lo := float64(mins[i])
			q.Filters = append(q.Filters, core.Filter{
				Attr: "f" + string(rune('a'+i)),
				Min:  lo,
				Max:  lo + float64(widths[i]) + 1,
			})
		}
		if timed {
			q.Time = &core.TimeFilter{Start: int64(t0), End: int64(t0) + int64(dur) + 1}
		}

		q2, err := Parse(q.String())
		if err != nil {
			t.Logf("re-parse failed for %q: %v", q.String(), err)
			return false
		}
		if q2.Agg != q.Agg || q2.Attr != q.Attr ||
			q2.Points != q.Points || q2.Regions != q.Regions {
			return false
		}
		if len(q2.Filters) != len(q.Filters) {
			return false
		}
		for i := range q.Filters {
			if q2.Filters[i].Attr != q.Filters[i].Attr ||
				math.Abs(q2.Filters[i].Min-q.Filters[i].Min) > 1e-9 ||
				math.Abs(q2.Filters[i].Max-q.Filters[i].Max) > 1e-9 {
				return false
			}
		}
		if (q2.Time == nil) != (q.Time == nil) {
			return false
		}
		if q.Time != nil && *q2.Time != *q.Time {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// Property: the parser never panics on arbitrary input.
func TestParseNeverPanicsProperty(t *testing.T) {
	f := func(s string) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		_, _ = Parse(s)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}
