package raster

import (
	"strconv"
	"testing"

	"repro/internal/geom"
)

func benchTransform(res int) Transform {
	return NewTransform(geom.BBox{MinX: 0, MinY: 0, MaxX: 1000, MaxY: 1000}, res, res)
}

func BenchmarkFillPolygon(b *testing.B) {
	for _, res := range []int{256, 1024} {
		tr := benchTransform(res)
		pg := geom.NewPolygon(geom.StarRing(geom.Pt(500, 500), 450, 200, 16))
		b.Run(strconv.Itoa(res), func(b *testing.B) {
			count := 0
			for i := 0; i < b.N; i++ {
				count = 0
				FillPolygon(tr, pg, func(x, y int) { count++ })
			}
			b.ReportMetric(float64(count), "fragments")
		})
	}
}

func BenchmarkFillPolygonWithHoles(b *testing.B) {
	tr := benchTransform(1024)
	pg := geom.Polygon{
		Outer: geom.RegularRing(geom.Pt(500, 500), 450, 64),
		Holes: []geom.Ring{
			geom.RegularRing(geom.Pt(400, 400), 80, 32),
			geom.RegularRing(geom.Pt(650, 600), 120, 32),
		},
	}
	pg.Normalize()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FillPolygon(tr, pg, func(x, y int) {})
	}
}

func BenchmarkTraceSegment(b *testing.B) {
	tr := benchTransform(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TraceSegment(tr, geom.Pt(3, 7), geom.Pt(997, 843), func(x, y int) {})
	}
}

func BenchmarkBoundaryPixels(b *testing.B) {
	tr := benchTransform(1024)
	pg := geom.NewPolygon(geom.StarRing(geom.Pt(500, 500), 450, 200, 16))
	bm := NewBitmap(1024, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bm.Clear()
		BoundaryPixels(tr, pg, bm.Set)
	}
}

func BenchmarkBitmapOps(b *testing.B) {
	bm := NewBitmap(1024, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x, y := i&1023, (i>>3)&1023
		bm.Set(x, y)
		if !bm.Get(x, y) {
			b.Fatal("bit lost")
		}
		bm.Unset(x, y)
	}
}
