package raster

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
)

func unit16() Transform {
	return NewTransform(geom.BBox{MinX: 0, MinY: 0, MaxX: 16, MaxY: 16}, 16, 16)
}

func TestNewTransformClamps(t *testing.T) {
	tr := NewTransform(geom.BBox{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}, 0, -3)
	if tr.W != 1 || tr.H != 1 {
		t.Errorf("W,H = %d,%d, want 1,1", tr.W, tr.H)
	}
}

func TestSquareTransform(t *testing.T) {
	world := geom.BBox{MinX: 0, MinY: 0, MaxX: 10, MaxY: 7}
	tr := SquareTransform(world, 2)
	if tr.W != 5 || tr.H != 4 {
		t.Errorf("W,H = %d,%d, want 5,4", tr.W, tr.H)
	}
	if tr.PixelWidth() != 2 || tr.PixelHeight() != 2 {
		t.Errorf("pixel size = %v,%v, want 2,2", tr.PixelWidth(), tr.PixelHeight())
	}
	// The grown window must contain the original.
	if !tr.World.ContainsBBox(world) {
		t.Errorf("grown world %v does not contain %v", tr.World, world)
	}
	// Degenerate input.
	tr = SquareTransform(geom.EmptyBBox(), 1)
	if tr.W != 1 || tr.H != 1 {
		t.Error("empty world should yield 1x1")
	}
}

func TestToPixel(t *testing.T) {
	tr := unit16()
	cases := []struct {
		p      geom.Point
		px, py int
		ok     bool
	}{
		{geom.Pt(0.5, 0.5), 0, 0, true},
		{geom.Pt(15.9, 15.9), 15, 15, true},
		{geom.Pt(16, 16), 15, 15, true},  // max edge maps to last pixel
		{geom.Pt(8, 8), 8, 8, true},      // cell boundary belongs to upper cell
		{geom.Pt(-0.1, 5), 0, 0, false},  // outside
		{geom.Pt(5, 16.01), 0, 0, false}, // outside
	}
	for i, c := range cases {
		px, py, ok := tr.ToPixel(c.p)
		if ok != c.ok || (ok && (px != c.px || py != c.py)) {
			t.Errorf("case %d: ToPixel(%v) = %d,%d,%v want %d,%d,%v",
				i, c.p, px, py, ok, c.px, c.py, c.ok)
		}
	}
}

func TestPixelCenterBoxRoundTrip(t *testing.T) {
	tr := NewTransform(geom.BBox{MinX: -10, MinY: 5, MaxX: 30, MaxY: 25}, 40, 10)
	for _, pc := range [][2]int{{0, 0}, {39, 9}, {17, 3}} {
		c := tr.PixelCenter(pc[0], pc[1])
		px, py, ok := tr.ToPixel(c)
		if !ok || px != pc[0] || py != pc[1] {
			t.Errorf("center of %v maps to %d,%d,%v", pc, px, py, ok)
		}
		if !tr.PixelBox(pc[0], pc[1]).Contains(c) {
			t.Errorf("pixel box does not contain its center for %v", pc)
		}
	}
}

func TestClampPixelAndIndex(t *testing.T) {
	tr := unit16()
	cases := []struct{ inX, inY, wantX, wantY int }{
		{-3, 5, 0, 5},
		{20, 5, 15, 5},
		{5, -1, 5, 0},
		{5, 99, 5, 15},
		{7, 7, 7, 7},
	}
	for _, c := range cases {
		gx, gy := tr.ClampPixel(c.inX, c.inY)
		if gx != c.wantX || gy != c.wantY {
			t.Errorf("ClampPixel(%d,%d) = %d,%d want %d,%d",
				c.inX, c.inY, gx, gy, c.wantX, c.wantY)
		}
	}
	if tr.Index(3, 2) != 2*16+3 {
		t.Errorf("Index(3,2) = %d", tr.Index(3, 2))
	}
}

func TestPixelDiagonal(t *testing.T) {
	tr := NewTransform(geom.BBox{MinX: 0, MinY: 0, MaxX: 30, MaxY: 40}, 10, 10)
	want := math.Hypot(3, 4)
	if d := tr.PixelDiagonal(); math.Abs(d-want) > 1e-12 {
		t.Errorf("diagonal = %v, want %v", d, want)
	}
}

func TestTransformSub(t *testing.T) {
	tr := unit16()
	sub := tr.Sub(4, 8, 8, 8)
	if sub.W != 8 || sub.H != 8 {
		t.Fatalf("sub dims = %d,%d, want 8,8", sub.W, sub.H)
	}
	wantWorld := geom.BBox{MinX: 4, MinY: 8, MaxX: 12, MaxY: 16}
	if sub.World != wantWorld {
		t.Errorf("sub world = %v, want %v", sub.World, wantWorld)
	}
	// Sub pixel (0,0) is parent pixel (4,8).
	if c := sub.PixelCenter(0, 0); !c.Eq(tr.PixelCenter(4, 8)) {
		t.Errorf("sub pixel center mismatch: %v vs %v", c, tr.PixelCenter(4, 8))
	}
	// Overflow is clipped.
	sub = tr.Sub(12, 12, 8, 8)
	if sub.W != 4 || sub.H != 4 {
		t.Errorf("clipped sub dims = %d,%d, want 4,4", sub.W, sub.H)
	}
}

func collect(fill func(visit func(x, y int))) map[[2]int]int {
	m := map[[2]int]int{}
	fill(func(x, y int) { m[[2]int{x, y}]++ })
	return m
}

func TestFillRingFullGrid(t *testing.T) {
	tr := unit16()
	ring := geom.RectRing(geom.BBox{MinX: 0, MinY: 0, MaxX: 16, MaxY: 16})
	got := collect(func(v func(x, y int)) { FillRing(tr, ring, v) })
	if len(got) != 256 {
		t.Errorf("full-grid fill = %d pixels, want 256", len(got))
	}
	for k, n := range got {
		if n != 1 {
			t.Errorf("pixel %v visited %d times", k, n)
		}
	}
}

func TestFillRingHalfPixelRect(t *testing.T) {
	tr := unit16()
	// Rectangle [2.5, 5.5] x [3.5, 4.5]: covers centers x in {3.5,4.5},
	// wait — centers are at *.5; x-range [2.5,5.5) covers centers 2.5,3.5,4.5
	// => px 2,3,4; y-range [3.5,4.5) covers center 3.5 => py 3.
	ring := geom.RectRing(geom.BBox{MinX: 2.5, MinY: 3.5, MaxX: 5.5, MaxY: 4.5})
	got := collect(func(v func(x, y int)) { FillRing(tr, ring, v) })
	want := map[[2]int]bool{{2, 3}: true, {3, 3}: true, {4, 3}: true}
	if len(got) != len(want) {
		t.Fatalf("fill = %v, want keys %v", got, want)
	}
	for k := range want {
		if got[k] != 1 {
			t.Errorf("missing pixel %v", k)
		}
	}
}

func TestFillRingTinyPolygonNoCenters(t *testing.T) {
	tr := unit16()
	// A polygon that covers no pixel center produces no fragments — exactly
	// the GPU behaviour that makes unbounded raster join approximate.
	ring := geom.RectRing(geom.BBox{MinX: 3.6, MinY: 3.6, MaxX: 3.9, MaxY: 3.9})
	got := collect(func(v func(x, y int)) { FillRing(tr, ring, v) })
	if len(got) != 0 {
		t.Errorf("sub-pixel fill = %v, want none", got)
	}
}

func TestFillPolygonMatchesContains(t *testing.T) {
	tr := unit16()
	star := geom.StarRing(geom.Pt(8, 8), 7, 3, 9)
	pg := geom.NewPolygon(star)
	got := collect(func(v func(x, y int)) { FillPolygon(tr, pg, v) })
	// Every pixel's coverage must equal the pixel-center containment test.
	for y := 0; y < 16; y++ {
		for x := 0; x < 16; x++ {
			want := pg.Contains(tr.PixelCenter(x, y))
			if _, ok := got[[2]int{x, y}]; ok != want {
				t.Errorf("pixel (%d,%d): filled=%v contains=%v", x, y, ok, want)
			}
		}
	}
}

func TestFillPolygonWithHole(t *testing.T) {
	tr := unit16()
	pg := geom.Polygon{
		Outer: geom.RectRing(geom.BBox{MinX: 1, MinY: 1, MaxX: 15, MaxY: 15}),
		Holes: []geom.Ring{geom.RectRing(geom.BBox{MinX: 5, MinY: 5, MaxX: 11, MaxY: 11})},
	}
	pg.Normalize()
	got := collect(func(v func(x, y int)) { FillPolygon(tr, pg, v) })
	// Outer covers 14x14=196 centers; hole removes 6x6=36.
	if len(got) != 196-36 {
		t.Errorf("holed fill = %d pixels, want 160", len(got))
	}
	if _, ok := got[[2]int{8, 8}]; ok {
		t.Error("hole center pixel should not be filled")
	}
}

func TestFillTriangle(t *testing.T) {
	tr := unit16()
	trg := geom.Triangle{geom.Pt(0, 0), geom.Pt(16, 0), geom.Pt(0, 16)}
	got := collect(func(v func(x, y int)) { FillTriangle(tr, trg, v) })
	for y := 0; y < 16; y++ {
		for x := 0; x < 16; x++ {
			c := tr.PixelCenter(x, y)
			want := c.X+c.Y < 16
			if _, ok := got[[2]int{x, y}]; ok != want {
				t.Errorf("triangle pixel (%d,%d): got %v want %v", x, y, ok, want)
			}
		}
	}
}

func TestTraceSegmentHorizontal(t *testing.T) {
	tr := unit16()
	got := collect(func(v func(x, y int)) {
		TraceSegment(tr, geom.Pt(1.5, 3.5), geom.Pt(9.5, 3.5), v)
	})
	if len(got) != 9 {
		t.Errorf("horizontal trace = %d cells, want 9", len(got))
	}
	for x := 1; x <= 9; x++ {
		if got[[2]int{x, 3}] == 0 {
			t.Errorf("missing cell (%d,3)", x)
		}
	}
}

func TestTraceSegmentDiagonal(t *testing.T) {
	tr := unit16()
	got := collect(func(v func(x, y int)) {
		TraceSegment(tr, geom.Pt(0.5, 0.5), geom.Pt(3.5, 3.5), v)
	})
	// Diagonal through corners: visits (0,0),(1,1),(2,2),(3,3) plus possibly
	// corner-adjacent cells depending on tie-breaking; must include the four
	// diagonal cells and be connected.
	for i := 0; i < 4; i++ {
		if got[[2]int{i, i}] == 0 {
			t.Errorf("missing diagonal cell (%d,%d)", i, i)
		}
	}
}

func TestTraceSegmentClipsOutside(t *testing.T) {
	tr := unit16()
	got := collect(func(v func(x, y int)) {
		TraceSegment(tr, geom.Pt(-100, 100), geom.Pt(-50, 120), v)
	})
	if len(got) != 0 {
		t.Errorf("outside trace = %v, want none", got)
	}
	// Segment crossing the window gets clipped to it.
	got = collect(func(v func(x, y int)) {
		TraceSegment(tr, geom.Pt(-10, 8.5), geom.Pt(30, 8.5), v)
	})
	if len(got) != 16 {
		t.Errorf("crossing trace = %d cells, want 16", len(got))
	}
}

func TestTraceSegmentPoint(t *testing.T) {
	tr := unit16()
	got := collect(func(v func(x, y int)) {
		TraceSegment(tr, geom.Pt(5.5, 5.5), geom.Pt(5.5, 5.5), v)
	})
	if len(got) != 1 || got[[2]int{5, 5}] != 1 {
		t.Errorf("point trace = %v, want {(5,5):1}", got)
	}
}

// Property: TraceSegment visits exactly the cells whose boxes the segment
// intersects-ish: every visited cell's (slightly expanded) box must touch
// the segment, and the endpoint cells are always visited.
func TestTraceSegmentProperty(t *testing.T) {
	tr := unit16()
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 500; i++ {
		a := geom.Pt(rng.Float64()*16, rng.Float64()*16)
		b := geom.Pt(rng.Float64()*16, rng.Float64()*16)
		visited := map[[2]int]bool{}
		TraceSegment(tr, a, b, func(x, y int) { visited[[2]int{x, y}] = true })
		ax, ay, _ := tr.ToPixel(a)
		bx, by, _ := tr.ToPixel(b)
		if !visited[[2]int{ax, ay}] || !visited[[2]int{bx, by}] {
			t.Fatalf("iter %d: endpoint cells not visited: a=(%d,%d) b=(%d,%d) got %v",
				i, ax, ay, bx, by, visited)
		}
		for c := range visited {
			box := tr.PixelBox(c[0], c[1]).Expand(1e-9)
			if _, _, ok := geom.ClipSegmentToBBox(a, b, box); !ok {
				t.Fatalf("iter %d: visited cell %v not touched by segment %v-%v", i, c, a, b)
			}
		}
	}
}

func TestBoundaryPixels(t *testing.T) {
	tr := unit16()
	pg := geom.NewPolygon(geom.RectRing(geom.BBox{MinX: 2.5, MinY: 2.5, MaxX: 13.5, MaxY: 13.5}))
	bm := NewBitmap(16, 16)
	BoundaryPixels(tr, pg, bm.Set)
	// Boundary ring: all cells the rect boundary passes through — columns
	// 2..13 at rows 2 and 13, plus rows 2..13 at columns 2 and 13.
	want := 0
	for y := 0; y < 16; y++ {
		for x := 0; x < 16; x++ {
			onX := (x == 2 || x == 13) && y >= 2 && y <= 13
			onY := (y == 2 || y == 13) && x >= 2 && x <= 13
			if onX || onY {
				want++
				if !bm.Get(x, y) {
					t.Errorf("boundary cell (%d,%d) not marked", x, y)
				}
			} else if bm.Get(x, y) {
				t.Errorf("non-boundary cell (%d,%d) marked", x, y)
			}
		}
	}
	if bm.Count() != want {
		t.Errorf("boundary count = %d, want %d", bm.Count(), want)
	}
}

func TestBitmap(t *testing.T) {
	bm := NewBitmap(70, 3) // straddles word boundaries
	if bm.Count() != 0 {
		t.Error("new bitmap should be empty")
	}
	bm.Set(0, 0)
	bm.Set(69, 2)
	bm.Set(63, 0)
	bm.Set(64, 0)
	if !bm.Get(0, 0) || !bm.Get(69, 2) || !bm.Get(63, 0) || !bm.Get(64, 0) {
		t.Error("set bits should read back")
	}
	if bm.Get(1, 0) || bm.Get(68, 2) {
		t.Error("unset bits should read false")
	}
	if bm.Count() != 4 {
		t.Errorf("count = %d, want 4", bm.Count())
	}
	bm.Clear()
	if bm.Count() != 0 || bm.Get(0, 0) {
		t.Error("clear should reset all bits")
	}
}

// Property: for random convex polygons, FillPolygon + BoundaryPixels
// partition coverage sensibly: every filled pixel is either fully inside
// (all four pixel corners inside) or marked as boundary.
func TestFillBoundaryPartitionProperty(t *testing.T) {
	tr := unit16()
	rng := rand.New(rand.NewSource(29))
	for iter := 0; iter < 100; iter++ {
		ring := geom.RegularRing(
			geom.Pt(4+rng.Float64()*8, 4+rng.Float64()*8),
			1+rng.Float64()*6, 3+rng.Intn(12))
		pg := geom.NewPolygon(ring)
		bm := NewBitmap(16, 16)
		BoundaryPixels(tr, pg, bm.Set)
		bad := false
		FillPolygon(tr, pg, func(x, y int) {
			if bm.Get(x, y) {
				return // boundary pixel: exactness not required
			}
			for _, c := range tr.PixelBox(x, y).Corners() {
				if !pg.ContainsBoundary(c, 1e-9) {
					bad = true
				}
			}
		})
		if bad {
			t.Fatalf("iter %d: non-boundary filled pixel has a corner outside", iter)
		}
	}
}
