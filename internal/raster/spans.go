// Region span compilation: the polygon side of a raster join is static
// across queries — the same layers are drawn at the same transforms every
// time the user drags a slider — so the scanline work (edge crossings,
// sorting, grid traversal) can be paid once and replayed as flat span
// lists. This is the software analogue of caching the polygon pass's
// fragment stream, and follows GeoBlocks' observation that precomputed
// polygon-side structures are the decisive lever for repeated aggregation
// over fixed region sets.
package raster

import (
	"container/list"
	"context"
	"sync"
	"sync/atomic"

	"repro/internal/geom"
)

// Span is one covered scanline run: pixels [X0, X1) of row Y.
type Span struct {
	Y, X0, X1 int32
}

// RegionSpans is the compiled scanline form of one region layer on one
// canvas transform: per-region fill spans and per-region deduplicated
// boundary pixel lists, both in CSR layout. Replaying Fill(k) left-to-right
// visits exactly the pixels FillPolygon visits for region k, in the same
// order; Boundary(k) lists the pixels BoundaryPixels would visit, in
// first-visit order with duplicates removed (the form every consumer
// reduces the conservative trace to anyway).
type RegionSpans struct {
	// T is the transform the spans were compiled on.
	T Transform

	fillStart  []int32
	fill       []Span
	boundStart []int32
	bound      []int32
}

// Regions returns the number of compiled regions.
func (rs *RegionSpans) Regions() int { return len(rs.fillStart) - 1 }

// Fill returns region k's covered scanline runs in row-major order.
func (rs *RegionSpans) Fill(k int) []Span {
	return rs.fill[rs.fillStart[k]:rs.fillStart[k+1]]
}

// Boundary returns region k's deduplicated boundary pixel indices in
// first-visit order.
func (rs *RegionSpans) Boundary(k int) []int32 {
	return rs.bound[rs.boundStart[k]:rs.boundStart[k+1]]
}

// Bytes returns the retained size of the compiled spans — the unit the
// span cache's byte budget is accounted in.
func (rs *RegionSpans) Bytes() int64 {
	const spanBytes, idxBytes = 12, 4
	return int64(len(rs.fill))*spanBytes +
		int64(len(rs.bound))*idxBytes +
		int64(len(rs.fillStart)+len(rs.boundStart))*idxBytes +
		64 // struct and header overhead
}

// CompileRegions flattens every polygon's fill and conservative boundary
// rasterization on the transform into span lists. The context is checked
// between regions: compilation of a large layer aborts with ctx.Err() when
// the request is canceled, exactly like the draw passes it replaces.
func CompileRegions(ctx context.Context, t Transform, polys []geom.Polygon) (*RegionSpans, error) {
	rs := &RegionSpans{
		T:          t,
		fillStart:  make([]int32, 1, len(polys)+1),
		boundStart: make([]int32, 1, len(polys)+1),
	}
	scratch := NewBitmap(t.W, t.H)
	var touched []int32
	for k := range polys {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		FillPolygonSpans(t, polys[k], func(py, x0, x1 int) {
			rs.fill = append(rs.fill, Span{Y: int32(py), X0: int32(x0), X1: int32(x1)})
		})
		rs.fillStart = append(rs.fillStart, int32(len(rs.fill)))

		touched = touched[:0]
		BoundaryPixels(t, polys[k], func(px, py int) {
			if scratch.Get(px, py) {
				return
			}
			scratch.Set(px, py)
			touched = append(touched, int32(py*t.W+px))
		})
		rs.bound = append(rs.bound, touched...)
		for _, idx := range touched {
			scratch.Unset(int(idx)%t.W, int(idx)/t.W)
		}
		rs.boundStart = append(rs.boundStart, int32(len(rs.bound)))
	}
	return rs, nil
}

// SpanKey identifies one compiled layer: the region set's process-unique
// stamp and the exact canvas transform (tiled renders key each tile's
// sub-transform separately).
type SpanKey struct {
	Owner uint64
	T     Transform
}

// SpanCacheStats is a snapshot of the cache's counters.
type SpanCacheStats struct {
	Entries         int
	Bytes, MaxBytes int64
	Hits, Misses    uint64
	Evictions       uint64
	Generation      uint64
}

// SpanCache is a byte-bounded, generation-stamped LRU over compiled region
// spans. A nil *SpanCache is a valid disabled cache: Get always misses and
// Put is a no-op, so callers fall back to direct rasterization without nil
// checks. Generations mirror the query-result cache's invalidation
// contract: the owner slaves SetGeneration to its catalog version, and any
// change drops every entry (a re-registered layer may reuse a name or a
// stamp's memory).
type SpanCache struct {
	gen atomic.Uint64

	mu        sync.Mutex
	max       int64
	bytes     int64
	ll        *list.List // front = most recently used
	entries   map[SpanKey]*list.Element
	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions uint64
}

// spanEntry is one LRU cell.
type spanEntry struct {
	key   SpanKey
	spans *RegionSpans
	bytes int64
}

// NewSpanCache returns a cache bounded to maxBytes of compiled spans.
// maxBytes <= 0 returns nil — the disabled cache.
func NewSpanCache(maxBytes int64) *SpanCache {
	if maxBytes <= 0 {
		return nil
	}
	return &SpanCache{
		max:     maxBytes,
		ll:      list.New(),
		entries: make(map[SpanKey]*list.Element),
	}
}

// Enabled reports whether the cache stores anything.
func (c *SpanCache) Enabled() bool { return c != nil }

// SetGeneration slaves the cache to the owner's catalog version: a changed
// generation drops every entry. The fast path is one atomic load, so
// calling it per request costs nothing when the catalog is stable.
func (c *SpanCache) SetGeneration(gen uint64) {
	if c == nil || c.gen.Load() == gen {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.gen.Swap(gen) == gen {
		return
	}
	c.ll.Init()
	clear(c.entries)
	c.bytes = 0
}

// Get returns the compiled spans for key, bumping its recency.
func (c *SpanCache) Get(key SpanKey) (*RegionSpans, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	c.hits.Add(1)
	c.ll.MoveToFront(el)
	return el.Value.(*spanEntry).spans, true
}

// Put stores compiled spans under key, evicting least-recently-used entries
// until the byte budget holds. Entries larger than the whole budget are not
// cached (the compile result is still returned to the caller by Compile's
// caller; caching it would evict everything for a one-shot tenant).
func (c *SpanCache) Put(key SpanKey, spans *RegionSpans) {
	if c == nil {
		return
	}
	n := spans.Bytes()
	if n > c.max {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		// Concurrent compile of the same layer: keep the incumbent.
		c.ll.MoveToFront(el)
		return
	}
	for c.bytes+n > c.max {
		back := c.ll.Back()
		if back == nil {
			break
		}
		ev := back.Value.(*spanEntry)
		c.ll.Remove(back)
		delete(c.entries, ev.key)
		c.bytes -= ev.bytes
		c.evictions++
	}
	c.entries[key] = c.ll.PushFront(&spanEntry{key: key, spans: spans, bytes: n})
	c.bytes += n
}

// Stats returns a snapshot of the cache counters.
func (c *SpanCache) Stats() SpanCacheStats {
	if c == nil {
		return SpanCacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return SpanCacheStats{
		Entries:    len(c.entries),
		Bytes:      c.bytes,
		MaxBytes:   c.max,
		Hits:       c.hits.Load(),
		Misses:     c.misses.Load(),
		Evictions:  c.evictions,
		Generation: c.gen.Load(),
	}
}
