package raster

import (
	"math"
	"math/bits"

	"repro/internal/geom"
)

// TraceSegment visits every pixel whose box the segment ab passes through,
// using Amanatides–Woo grid traversal. The segment is clipped to the window
// first; segments entirely outside visit nothing. Pixels are visited once,
// in order along the segment.
func TraceSegment(t Transform, a, b geom.Point, visit func(px, py int)) {
	// Shrink the clip window infinitesimally so endpoints exactly on the max
	// edges land in the last pixel rather than out of range.
	p0, p1, ok := geom.ClipSegmentToBBox(a, b, t.World)
	if !ok {
		return
	}
	pw, ph := t.PixelWidth(), t.PixelHeight()
	toCell := func(p geom.Point) (int, int) {
		x := int((p.X - t.World.MinX) / pw)
		y := int((p.Y - t.World.MinY) / ph)
		if x >= t.W {
			x = t.W - 1
		}
		if y >= t.H {
			y = t.H - 1
		}
		if x < 0 {
			x = 0
		}
		if y < 0 {
			y = 0
		}
		return x, y
	}
	x, y := toCell(p0)
	xEnd, yEnd := toCell(p1)

	dx := p1.X - p0.X
	dy := p1.Y - p0.Y

	stepX, stepY := 0, 0
	tMaxX, tMaxY := math.Inf(1), math.Inf(1)
	tDeltaX, tDeltaY := math.Inf(1), math.Inf(1)

	if dx > 0 {
		stepX = 1
		next := t.World.MinX + float64(x+1)*pw
		tMaxX = (next - p0.X) / dx
		tDeltaX = pw / dx
	} else if dx < 0 {
		stepX = -1
		next := t.World.MinX + float64(x)*pw
		tMaxX = (next - p0.X) / dx
		tDeltaX = -pw / dx
	}
	if dy > 0 {
		stepY = 1
		next := t.World.MinY + float64(y+1)*ph
		tMaxY = (next - p0.Y) / dy
		tDeltaY = ph / dy
	} else if dy < 0 {
		stepY = -1
		next := t.World.MinY + float64(y)*ph
		tMaxY = (next - p0.Y) / dy
		tDeltaY = -ph / dy
	}

	// Bounded by the Manhattan cell distance plus slack for ties.
	maxSteps := abs(xEnd-x) + abs(yEnd-y) + 2
	visit(x, y)
	for steps := 0; steps < maxSteps; steps++ {
		if x == xEnd && y == yEnd {
			return
		}
		if tMaxX < tMaxY {
			x += stepX
			tMaxX += tDeltaX
		} else {
			y += stepY
			tMaxY += tDeltaY
		}
		if x < 0 || x >= t.W || y < 0 || y >= t.H {
			return
		}
		visit(x, y)
	}
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// BoundaryPixels visits every pixel crossed by any edge of the polygon
// (outer ring and holes). A pixel may be visited more than once when
// multiple edges cross it; callers typically mark a bitmap.
//
// This is the conservative pass Raster Join's accurate variant uses to
// decide which fragments need the exact point-in-polygon test.
func BoundaryPixels(t Transform, pg geom.Polygon, visit func(px, py int)) {
	pg.Edges(func(a, b geom.Point) bool {
		TraceSegment(t, a, b, visit)
		return true
	})
}

// Bitmap is a dense 2D bit set over a pixel grid, used to deduplicate
// boundary-pixel visits and to classify interior vs boundary coverage.
type Bitmap struct {
	W, H  int
	words []uint64
}

// NewBitmap returns a cleared W×H bitmap.
func NewBitmap(w, h int) *Bitmap {
	return &Bitmap{W: w, H: h, words: make([]uint64, (w*h+63)/64)}
}

// Set marks pixel (x,y).
func (b *Bitmap) Set(x, y int) {
	i := y*b.W + x
	b.words[i>>6] |= 1 << uint(i&63)
}

// Unset clears pixel (x,y).
func (b *Bitmap) Unset(x, y int) {
	i := y*b.W + x
	b.words[i>>6] &^= 1 << uint(i&63)
}

// Get reports whether pixel (x,y) is marked.
func (b *Bitmap) Get(x, y int) bool {
	i := y*b.W + x
	return b.words[i>>6]&(1<<uint(i&63)) != 0
}

// Clear unmarks all pixels, retaining the allocation.
func (b *Bitmap) Clear() {
	for i := range b.words {
		b.words[i] = 0
	}
}

// Count returns the number of marked pixels.
func (b *Bitmap) Count() int {
	n := 0
	for _, w := range b.words {
		n += bits.OnesCount64(w)
	}
	return n
}
