package raster

import (
	"testing"
	"testing/quick"

	"repro/internal/geom"
)

// Property: for any grid and any in-window point, the pixel returned by
// ToPixel contains the point (PixelBox inversion).
func TestToPixelBoxInversionProperty(t *testing.T) {
	f := func(w8, h8 uint8, fx, fy uint16) bool {
		w := int(w8%64) + 1
		h := int(h8%64) + 1
		tr := NewTransform(geom.BBox{MinX: -3, MinY: 2, MaxX: 13, MaxY: 11}, w, h)
		p := geom.Point{
			X: tr.World.MinX + float64(fx)/65535*tr.World.Width(),
			Y: tr.World.MinY + float64(fy)/65535*tr.World.Height(),
		}
		px, py, ok := tr.ToPixel(p)
		if !ok {
			return false
		}
		// The max edge maps into the last pixel; expand the box by a hair
		// to absorb the closed-edge convention.
		return tr.PixelBox(px, py).Expand(1e-9).Contains(p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: every pixel's center maps back to that pixel.
func TestPixelCenterRoundTripProperty(t *testing.T) {
	f := func(w8, h8, xs, ys uint8) bool {
		w := int(w8%96) + 1
		h := int(h8%96) + 1
		tr := NewTransform(geom.BBox{MinX: 0, MinY: 0, MaxX: 7, MaxY: 5}, w, h)
		px := int(xs) % w
		py := int(ys) % h
		gx, gy, ok := tr.ToPixel(tr.PixelCenter(px, py))
		return ok && gx == px && gy == py
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: Sub tiles partition the full grid — each full pixel belongs to
// exactly one tile, with matching world geometry.
func TestSubPartitionProperty(t *testing.T) {
	f := func(w8, h8, step8 uint8) bool {
		w := int(w8%50) + 1
		h := int(h8%50) + 1
		step := int(step8%13) + 1
		tr := NewTransform(geom.BBox{MinX: -1, MinY: -1, MaxX: 4, MaxY: 3}, w, h)
		covered := 0
		for y0 := 0; y0 < h; y0 += step {
			for x0 := 0; x0 < w; x0 += step {
				sub := tr.Sub(x0, y0, step, step)
				covered += sub.W * sub.H
				// The sub's first pixel center matches the parent's.
				if !sub.PixelCenter(0, 0).NearEq(tr.PixelCenter(x0, y0), 1e-9) {
					return false
				}
			}
		}
		return covered == w*h
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: Bitmap Set/Get/Unset behave like a reference map.
func TestBitmapAgainstMapProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		bm := NewBitmap(37, 29)
		ref := map[int]bool{}
		for _, op := range ops {
			x := int(op) % 37
			y := (int(op) / 37) % 29
			switch op % 3 {
			case 0:
				bm.Set(x, y)
				ref[y*37+x] = true
			case 1:
				bm.Unset(x, y)
				delete(ref, y*37+x)
			case 2:
				if bm.Get(x, y) != ref[y*37+x] {
					return false
				}
			}
		}
		count := 0
		for range ref {
			count++
		}
		return bm.Count() == count
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
