package raster

import (
	"sort"

	"repro/internal/geom"
)

// FillPolygon scan-converts a polygon (outer ring and holes) onto the grid,
// calling visit for every pixel whose center lies inside the polygon, in
// row-major order. This is the same center-sampling coverage rule the GPU
// rasterizer applies when Raster Join draws its polygon pass.
//
// Holes are handled by the even-odd rule: hole edges flip coverage exactly
// like outer edges.
func FillPolygon(t Transform, pg geom.Polygon, visit func(px, py int)) {
	FillPolygonSpans(t, pg, func(py, x0, x1 int) {
		for px := x0; px < x1; px++ {
			visit(px, py)
		}
	})
}

// FillPolygonSpans is the span-level form of FillPolygon: visit receives
// each covered scanline run as pixels [x0, x1) of row py, in row-major
// order. Expanding every span left-to-right yields exactly FillPolygon's
// pixel sequence — the span compiler banks these runs so repeated queries
// replay them instead of re-scan-converting the polygon.
func FillPolygonSpans(t Transform, pg geom.Polygon, visit func(py, x0, x1 int)) {
	bb := pg.BBox().Intersect(t.World)
	if bb.IsEmpty() {
		return
	}
	ph := t.PixelHeight()
	// Pixel rows whose centers fall inside the polygon's Y extent.
	y0 := int((bb.MinY - t.World.MinY) / ph)
	y1 := int((bb.MaxY - t.World.MinY) / ph)
	if y1 >= t.H {
		y1 = t.H - 1
	}
	if y0 < 0 {
		y0 = 0
	}
	var xs []float64
	for py := y0; py <= y1; py++ {
		cy := t.World.MinY + (float64(py)+0.5)*ph
		xs = xs[:0]
		xs = ringCrossings(pg.Outer, cy, xs)
		for _, h := range pg.Holes {
			xs = ringCrossings(h, cy, xs)
		}
		if len(xs) < 2 {
			continue
		}
		sort.Float64s(xs)
		for i := 0; i+1 < len(xs); i += 2 {
			x0, x1 := spanBounds(t, xs[i], xs[i+1])
			if x0 < x1 {
				visit(py, x0, x1)
			}
		}
	}
}

// FillRing scan-converts a single ring with center sampling.
func FillRing(t Transform, r geom.Ring, visit func(px, py int)) {
	FillPolygon(t, geom.Polygon{Outer: r}, visit)
}

// FillTriangle scan-converts a triangle with center sampling. Triangles are
// the primitive the GPU device draws; polygon draws decompose into these.
func FillTriangle(t Transform, tr geom.Triangle, visit func(px, py int)) {
	FillRing(t, geom.Ring{tr[0], tr[1], tr[2]}, visit)
}

// ringCrossings appends the x coordinates where the ring's edges cross the
// horizontal line y=cy, using the half-open rule (an edge covers its lower
// endpoint, excludes its upper) so shared vertices are counted exactly once.
func ringCrossings(r geom.Ring, cy float64, xs []float64) []float64 {
	n := len(r)
	if n < 3 {
		return xs
	}
	for i := 0; i < n; i++ {
		a := r[i]
		b := r[(i+1)%n]
		if (a.Y > cy) == (b.Y > cy) {
			continue
		}
		xs = append(xs, a.X+(cy-a.Y)*(b.X-a.X)/(b.Y-a.Y))
	}
	return xs
}

// spanBounds converts a world-space crossing pair into the pixel run whose
// centers fall in [x0, x1), clamped to the grid.
func spanBounds(t Transform, x0, x1 float64) (start, end int) {
	pw := t.PixelWidth()
	start = firstCenterIdx(x0-t.World.MinX, pw)
	end = firstCenterIdx(x1-t.World.MinX, pw) // exclusive
	if start < 0 {
		start = 0
	}
	if end > t.W {
		end = t.W
	}
	return start, end
}

// firstCenterIdx returns the index of the first pixel whose center
// (at (idx+0.5)*size) is >= v, i.e. ceil(v/size - 0.5).
func firstCenterIdx(v, size float64) int {
	f := v/size - 0.5
	i := int(f)
	if f > float64(i) {
		i++
	}
	return i
}
