package raster

import (
	"context"
	"testing"

	"repro/internal/geom"
)

// spanTestPolys builds an awkward mix of shapes: a star (concave), a
// rectangle, a holed box, and a degenerate sliver.
func spanTestPolys() []geom.Polygon {
	star := geom.NewPolygon(geom.StarRing(geom.Point{X: 30, Y: 30}, 25, 10, 7))
	rect := geom.NewPolygon(geom.RectRing(geom.BBox{MinX: 55, MinY: 5, MaxX: 95, MaxY: 45}))
	holed := geom.Polygon{
		Outer: geom.RectRing(geom.BBox{MinX: 10, MinY: 60, MaxX: 90, MaxY: 95}),
		Holes: []geom.Ring{geom.RectRing(geom.BBox{MinX: 30, MinY: 70, MaxX: 70, MaxY: 85})},
	}
	sliver := geom.NewPolygon(geom.Ring{{X: 5, Y: 50}, {X: 95, Y: 50.4}, {X: 95, Y: 50.6}})
	return []geom.Polygon{star, rect, holed, sliver}
}

// TestCompileRegionsMatchesDirect: replaying compiled fill spans and
// boundary lists must reproduce FillPolygon and deduplicated
// BoundaryPixels exactly — same pixels, same order.
func TestCompileRegionsMatchesDirect(t *testing.T) {
	tr := NewTransform(geom.BBox{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100}, 64, 64)
	polys := spanTestPolys()
	rs, err := CompileRegions(context.Background(), tr, polys)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Regions() != len(polys) {
		t.Fatalf("Regions() = %d, want %d", rs.Regions(), len(polys))
	}
	for k, pg := range polys {
		var want []int32
		FillPolygon(tr, pg, func(px, py int) {
			want = append(want, int32(py*tr.W+px))
		})
		var got []int32
		for _, s := range rs.Fill(k) {
			for px := s.X0; px < s.X1; px++ {
				got = append(got, s.Y*int32(tr.W)+px)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("region %d: %d fill pixels, want %d", k, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("region %d: fill pixel %d = %d, want %d (order must match)",
					k, i, got[i], want[i])
			}
		}

		seen := NewBitmap(tr.W, tr.H)
		var wantBound []int32
		BoundaryPixels(tr, pg, func(px, py int) {
			if seen.Get(px, py) {
				return
			}
			seen.Set(px, py)
			wantBound = append(wantBound, int32(py*tr.W+px))
		})
		gotBound := rs.Boundary(k)
		if len(gotBound) != len(wantBound) {
			t.Fatalf("region %d: %d boundary pixels, want %d", k, len(gotBound), len(wantBound))
		}
		for i := range wantBound {
			if gotBound[i] != wantBound[i] {
				t.Fatalf("region %d: boundary pixel %d = %d, want %d (first-visit order must match)",
					k, i, gotBound[i], wantBound[i])
			}
		}
	}
	if rs.Bytes() <= 0 {
		t.Fatal("Bytes() must be positive for a non-empty compile")
	}
}

// TestCompileRegionsCancel: an already-canceled context aborts compilation.
func TestCompileRegionsCancel(t *testing.T) {
	tr := NewTransform(geom.BBox{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100}, 32, 32)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := CompileRegions(ctx, tr, spanTestPolys()); err != context.Canceled {
		t.Fatalf("CompileRegions under canceled ctx = %v, want context.Canceled", err)
	}
}

// compileOne is a test helper compiling a single rectangle layer.
func compileOne(t *testing.T, trW int, box geom.BBox) *RegionSpans {
	t.Helper()
	tr := NewTransform(geom.BBox{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100}, trW, trW)
	rs, err := CompileRegions(context.Background(), tr, []geom.Polygon{geom.NewPolygon(geom.RectRing(box))})
	if err != nil {
		t.Fatal(err)
	}
	return rs
}

// TestSpanCacheLRUBudget: the cache evicts least-recently-used entries to
// honor its byte bound, and refuses entries larger than the whole budget.
func TestSpanCacheLRUBudget(t *testing.T) {
	sp := compileOne(t, 64, geom.BBox{MinX: 10, MinY: 10, MaxX: 90, MaxY: 90})
	c := NewSpanCache(3*sp.Bytes() + 10)
	keys := make([]SpanKey, 5)
	for i := range keys {
		keys[i] = SpanKey{Owner: uint64(i + 1), T: sp.T}
		c.Put(keys[i], sp)
	}
	st := c.Stats()
	if st.Bytes > st.MaxBytes {
		t.Fatalf("cache holds %d bytes, budget %d", st.Bytes, st.MaxBytes)
	}
	if st.Entries != 3 || st.Evictions != 2 {
		t.Fatalf("entries=%d evictions=%d, want 3 and 2", st.Entries, st.Evictions)
	}
	// Oldest two are gone, newest three resident.
	for i := 0; i < 2; i++ {
		if _, ok := c.Get(keys[i]); ok {
			t.Fatalf("key %d should have been evicted", i)
		}
	}
	for i := 2; i < 5; i++ {
		if _, ok := c.Get(keys[i]); !ok {
			t.Fatalf("key %d should be resident", i)
		}
	}
	// Recency: touch keys[2], insert a new entry; keys[3] is now LRU.
	c.Get(keys[2])
	c.Get(keys[4])
	c.Put(SpanKey{Owner: 99, T: sp.T}, sp)
	if _, ok := c.Get(keys[3]); ok {
		t.Fatal("LRU entry survived an over-budget insert")
	}
	if _, ok := c.Get(keys[2]); !ok {
		t.Fatal("recently-used entry was evicted")
	}

	// An entry bigger than the whole budget is not cached.
	tiny := NewSpanCache(sp.Bytes() - 1)
	tiny.Put(SpanKey{Owner: 1, T: sp.T}, sp)
	if got := tiny.Stats().Entries; got != 0 {
		t.Fatalf("oversized entry was cached (%d entries)", got)
	}
}

// TestSpanCacheGenerationInvalidation: a generation change drops every
// entry, mirroring the query-result cache's catalog-version contract.
func TestSpanCacheGenerationInvalidation(t *testing.T) {
	sp := compileOne(t, 32, geom.BBox{MinX: 10, MinY: 10, MaxX: 90, MaxY: 90})
	c := NewSpanCache(1 << 20)
	key := SpanKey{Owner: 1, T: sp.T}
	c.Put(key, sp)
	c.SetGeneration(0) // no-op: unchanged generation keeps entries
	if _, ok := c.Get(key); !ok {
		t.Fatal("same-generation sync dropped the cache")
	}
	c.SetGeneration(7)
	if _, ok := c.Get(key); ok {
		t.Fatal("generation change must drop every entry")
	}
	st := c.Stats()
	if st.Generation != 7 || st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("post-invalidation stats = %+v", st)
	}
}

// TestSpanCacheNilSafe: a nil *SpanCache is the disabled cache — every
// method is a safe no-op.
func TestSpanCacheNilSafe(t *testing.T) {
	var c *SpanCache
	if c.Enabled() {
		t.Fatal("nil cache reports enabled")
	}
	if NewSpanCache(0) != nil || NewSpanCache(-5) != nil {
		t.Fatal("non-positive budget must return the nil (disabled) cache")
	}
	c.SetGeneration(3)
	sp := compileOne(t, 16, geom.BBox{MinX: 10, MinY: 10, MaxX: 90, MaxY: 90})
	c.Put(SpanKey{Owner: 1, T: sp.T}, sp)
	if _, ok := c.Get(SpanKey{Owner: 1, T: sp.T}); ok {
		t.Fatal("nil cache returned a hit")
	}
	if st := c.Stats(); st.Entries != 0 || st.MaxBytes != 0 {
		t.Fatalf("nil cache stats = %+v", st)
	}
}
