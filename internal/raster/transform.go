// Package raster implements the scan-conversion engine of the software GPU:
// world-to-pixel transforms, scanline polygon fill with pixel-center
// coverage (the sampling rule real GPUs use), conservative boundary
// rasterization, and grid traversal of segments.
//
// Raster Join's approximation semantics come directly from the coverage
// rule implemented here: a pixel belongs to a polygon iff the pixel's
// center is inside the polygon, exactly as the OpenGL rasterizer decides
// fragment coverage for the paper's polygon-rendering pass.
package raster

import (
	"math"

	"repro/internal/geom"
)

// Transform maps a rectangular world window onto a W×H pixel grid. Pixel
// (0,0) is the lower-left cell; pixel centers sit at half-integer offsets.
type Transform struct {
	World geom.BBox
	W, H  int
}

// NewTransform returns a transform over the given window. Width and height
// must be positive; the window must be non-empty.
func NewTransform(world geom.BBox, w, h int) Transform {
	if w < 1 {
		w = 1
	}
	if h < 1 {
		h = 1
	}
	return Transform{World: world, W: w, H: h}
}

// SquareTransform returns a transform whose pixels are square with the given
// world-unit side length, covering (at least) the window. The window is
// expanded rightward/upward to an exact multiple of the pixel size.
func SquareTransform(world geom.BBox, pixelSize float64) Transform {
	if pixelSize <= 0 || world.IsEmpty() {
		return NewTransform(world, 1, 1)
	}
	w := int(math.Ceil(world.Width() / pixelSize))
	h := int(math.Ceil(world.Height() / pixelSize))
	if w < 1 {
		w = 1
	}
	if h < 1 {
		h = 1
	}
	grown := geom.BBox{
		MinX: world.MinX, MinY: world.MinY,
		MaxX: world.MinX + float64(w)*pixelSize,
		MaxY: world.MinY + float64(h)*pixelSize,
	}
	return Transform{World: grown, W: w, H: h}
}

// PixelWidth returns the world-space width of one pixel.
func (t Transform) PixelWidth() float64 { return t.World.Width() / float64(t.W) }

// PixelHeight returns the world-space height of one pixel.
func (t Transform) PixelHeight() float64 { return t.World.Height() / float64(t.H) }

// PixelDiagonal returns the world-space diagonal of one pixel — the
// worst-case distance between a point in a pixel and the pixel's far corner,
// which bounds Raster Join's misassignment distance.
func (t Transform) PixelDiagonal() float64 {
	return math.Hypot(t.PixelWidth(), t.PixelHeight())
}

// ToPixel maps a world point to its containing pixel. ok is false when the
// point is outside the window. Points exactly on the max edge map to the
// last pixel.
func (t Transform) ToPixel(p geom.Point) (px, py int, ok bool) {
	if !t.World.Contains(p) {
		return 0, 0, false
	}
	px = int((p.X - t.World.MinX) / t.PixelWidth())
	py = int((p.Y - t.World.MinY) / t.PixelHeight())
	if px >= t.W {
		px = t.W - 1
	}
	if py >= t.H {
		py = t.H - 1
	}
	return px, py, true
}

// PixelCenter returns the world coordinates of the center of pixel (px,py).
func (t Transform) PixelCenter(px, py int) geom.Point {
	return geom.Point{
		X: t.World.MinX + (float64(px)+0.5)*t.PixelWidth(),
		Y: t.World.MinY + (float64(py)+0.5)*t.PixelHeight(),
	}
}

// PixelBox returns the world-space extent of pixel (px,py).
func (t Transform) PixelBox(px, py int) geom.BBox {
	pw, ph := t.PixelWidth(), t.PixelHeight()
	x := t.World.MinX + float64(px)*pw
	y := t.World.MinY + float64(py)*ph
	return geom.BBox{MinX: x, MinY: y, MaxX: x + pw, MaxY: y + ph}
}

// ClampPixel clamps pixel coordinates into the grid.
func (t Transform) ClampPixel(px, py int) (int, int) {
	if px < 0 {
		px = 0
	} else if px >= t.W {
		px = t.W - 1
	}
	if py < 0 {
		py = 0
	} else if py >= t.H {
		py = t.H - 1
	}
	return px, py
}

// Index returns the row-major index of pixel (px,py).
func (t Transform) Index(px, py int) int { return py*t.W + px }

// Sub returns a transform over the sub-rectangle of pixels
// [x0,x0+w) × [y0,y0+h), used for tiled multi-pass rendering.
func (t Transform) Sub(x0, y0, w, h int) Transform {
	if x0 < 0 {
		x0 = 0
	}
	if y0 < 0 {
		y0 = 0
	}
	if x0+w > t.W {
		w = t.W - x0
	}
	if y0+h > t.H {
		h = t.H - y0
	}
	pw, ph := t.PixelWidth(), t.PixelHeight()
	return Transform{
		World: geom.BBox{
			MinX: t.World.MinX + float64(x0)*pw,
			MinY: t.World.MinY + float64(y0)*ph,
			MaxX: t.World.MinX + float64(x0+w)*pw,
			MaxY: t.World.MinY + float64(y0+h)*ph,
		},
		W: w, H: h,
	}
}
