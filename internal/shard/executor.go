package shard

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"

	"repro/internal/core"
)

// ErrUnavailable is returned when a shard executor is down (killed by chaos
// or an operator) — the coordinator surfaces it instead of a silently
// partial answer, and the server maps it to 503 with Retry-After.
var ErrUnavailable = errors.New("shard: executor unavailable")

// Executor runs one shard's partial point pass. The in-process
// implementation calls core.ShardPointPass directly; a network transport
// would marshal the spec plus a (dataset, snapshot) reference and run the
// same function remotely.
type Executor interface {
	// PointPass evaluates spec over the shard's block assignment for the
	// given ownership range.
	PointPass(ctx context.Context, spec *core.ShardSpec, xlo, xhi float64, blocks []int) (*core.ShardPartial, error)
}

// localExecutor is the in-process Executor.
type localExecutor struct{}

func (localExecutor) PointPass(ctx context.Context, spec *core.ShardSpec, xlo, xhi float64, blocks []int) (*core.ShardPartial, error) {
	return core.ShardPointPass(ctx, spec, xlo, xhi, blocks)
}

// NodeStats snapshots one executor slot for /api/stats.
type NodeStats struct {
	Shard         int   `json:"shard"`
	Down          bool  `json:"down"`
	Inflight      int64 `json:"inflight"`
	Served        int64 `json:"served"`
	Refused       int64 `json:"refused"`
	Merged        int64 `json:"merged"`
	Points        int64 `json:"points"`
	BlocksScanned int64 `json:"blocksScanned"`
	BlocksPruned  int64 `json:"blocksPruned"`
}

// node is one executor slot: the executor, its liveness, and its gauges.
// Kill marks the slot down and cancels every in-flight pass; Restart brings
// it back (executors are stateless, so a restart is a fresh slot).
type node struct {
	idx  int
	exec Executor

	mu       sync.Mutex
	down     bool
	nextID   uint64
	inFlight map[uint64]context.CancelFunc

	inflight atomic.Int64
	served   atomic.Int64
	refused  atomic.Int64
	merged   atomic.Int64
	points   atomic.Int64
	scanned  atomic.Int64
	pruned   atomic.Int64
}

func newNode(idx int, exec Executor) *node {
	return &node{idx: idx, exec: exec, inFlight: make(map[uint64]context.CancelFunc)}
}

// run executes one partial pass on the node, honoring kills: a down node
// refuses immediately, and a kill landing mid-pass cancels the pass and is
// reported as ErrUnavailable (an honest degradation, never a silent
// partial) unless the request itself was already canceled.
func (nd *node) run(ctx context.Context, spec *core.ShardSpec, xlo, xhi float64, blocks []int) (*core.ShardPartial, error) {
	nd.mu.Lock()
	if nd.down {
		nd.mu.Unlock()
		nd.refused.Add(1)
		return nil, ErrUnavailable
	}
	kctx, cancel := context.WithCancel(ctx)
	id := nd.nextID
	nd.nextID++
	nd.inFlight[id] = cancel
	nd.mu.Unlock()

	nd.inflight.Add(1)
	defer func() {
		nd.inflight.Add(-1)
		nd.mu.Lock()
		delete(nd.inFlight, id)
		nd.mu.Unlock()
		cancel()
	}()

	p, err := nd.exec.PointPass(kctx, spec, xlo, xhi, blocks)
	if err != nil {
		nd.mu.Lock()
		down := nd.down
		nd.mu.Unlock()
		if down && ctx.Err() == nil {
			nd.refused.Add(1)
			return nil, ErrUnavailable
		}
		return nil, err
	}
	nd.served.Add(1)
	nd.points.Add(p.Points)
	nd.scanned.Add(p.Scanned)
	nd.pruned.Add(p.Pruned)
	return p, nil
}

// kill marks the node down and aborts in-flight passes.
func (nd *node) kill() {
	nd.mu.Lock()
	nd.down = true
	cancels := make([]context.CancelFunc, 0, len(nd.inFlight))
	for _, c := range nd.inFlight {
		cancels = append(cancels, c)
	}
	nd.mu.Unlock()
	for _, c := range cancels {
		c()
	}
}

// restart brings the node back.
func (nd *node) restart() {
	nd.mu.Lock()
	nd.down = false
	nd.mu.Unlock()
}

func (nd *node) stats() NodeStats {
	nd.mu.Lock()
	down := nd.down
	nd.mu.Unlock()
	return NodeStats{
		Shard:         nd.idx,
		Down:          down,
		Inflight:      nd.inflight.Load(),
		Served:        nd.served.Load(),
		Refused:       nd.refused.Load(),
		Merged:        nd.merged.Load(),
		Points:        nd.points.Load(),
		BlocksScanned: nd.scanned.Load(),
		BlocksPruned:  nd.pruned.Load(),
	}
}
