// Package shard implements spatially sharded scatter-gather execution: a
// cell-range sharding scheme that splits a dataset's points into N spatial
// shards along world-x cuts, per-shard executors that run the partial point
// pass over their block assignment (in-process here, behind an interface a
// network transport can implement), and a coordinator that fans a query out
// to every shard and merges the partials in deterministic shard order so
// results are byte-identical to the unsharded path at any shard count (see
// internal/core's scatter driver for the full argument).
package shard

import (
	"math"

	"repro/internal/data"
)

// GridCols is the cell grid the cut chooser quantizes to: cuts land on
// boundaries of a fixed 256-column grid over the dataset's x extent, the
// same discipline GeoBlocks uses for its aggregation cells, so shard ranges
// are stable cell ranges rather than arbitrary floats.
const GridCols = 256

// Layout is one dataset's shard assignment: N ranges separated by N-1
// ascending cuts, plus each shard's ascending list of candidate blocks
// (blocks whose x zone intersects the shard's range — a block overlapping a
// cut appears in both neighbors, and the per-point ownership test keeps the
// halves disjoint).
type Layout struct {
	N      int
	Cuts   []float64
	Blocks [][]int
	// Stamp identifies the source snapshot the assignment was computed
	// for; NumBlocks is the block count at that snapshot.
	Stamp     uint64
	NumBlocks int
	// Points is the source length at build time (diagnostics).
	Points int
}

// Range returns shard i's half-open world-x ownership range; the first and
// last shards extend to ±Inf so every point (and every appended point) has
// exactly one owner.
func (l *Layout) Range(i int) (xlo, xhi float64) {
	xlo, xhi = math.Inf(-1), math.Inf(1)
	if i > 0 {
		xlo = l.Cuts[i-1]
	}
	if i < l.N-1 {
		xhi = l.Cuts[i]
	}
	return xlo, xhi
}

// Build computes a layout for the source: a point-mass histogram over the
// cell grid (each block's length smeared across the cells its x zone
// covers) picks N-1 cuts at cell boundaries balancing estimated mass, then
// every block is assigned to the shards its x zone intersects. Zone maps
// are the only input — no point is decoded.
func Build(src data.PointSource, n int) *Layout {
	if n < 1 {
		n = 1
	}
	l := &Layout{
		N:         n,
		Stamp:     src.Stamp(),
		NumBlocks: src.NumBlocks(),
		Points:    src.Len(),
	}
	if n > 1 {
		l.Cuts = chooseCuts(src, n)
	}
	l.Blocks = assign(src, l)
	return l
}

// chooseCuts picks n-1 ascending cut positions at cell boundaries. A
// degenerate extent (empty source, single column, all-NaN zones) collapses
// every cut onto the same boundary: a single shard then owns everything and
// the others legally own empty ranges.
func chooseCuts(src data.PointSource, n int) []float64 {
	minX, maxX := math.Inf(1), math.Inf(-1)
	nb := src.NumBlocks()
	for b := 0; b < nb; b++ {
		z := src.Zone(b)
		if z.X.Min > z.X.Max {
			continue // all-NaN block: no finite x
		}
		if z.X.Min < minX {
			minX = z.X.Min
		}
		if z.X.Max > maxX {
			maxX = z.X.Max
		}
	}
	cuts := make([]float64, n-1)
	if !(minX < maxX) {
		for i := range cuts {
			cuts[i] = minX // degenerate: may be ±Inf or a single column
		}
		return cuts
	}
	cell := (maxX - minX) / GridCols
	hist := make([]float64, GridCols)
	var total float64
	for b := 0; b < nb; b++ {
		z := src.Zone(b)
		if z.X.Min > z.X.Max {
			continue
		}
		blo, bhi := src.BlockSpan(b)
		mass := float64(bhi - blo)
		c0 := cellOf(z.X.Min, minX, cell)
		c1 := cellOf(z.X.Max, minX, cell)
		share := mass / float64(c1-c0+1)
		for c := c0; c <= c1; c++ {
			hist[c] += share
		}
		//lint:ignore floataccum block lengths are exactly-representable integers and total stays < 2^53, so the sum is exact
		total += mass
	}
	// Walk the prefix sum; cut at the first cell boundary past each
	// i/n-quantile. Cuts are non-decreasing by construction.
	var cum float64
	c := 0
	for i := 1; i < n; i++ {
		target := total * float64(i) / float64(n)
		for c < GridCols-1 && cum+hist[c] < target {
			cum += hist[c]
			c++
		}
		cuts[i-1] = minX + float64(c)*cell
	}
	return cuts
}

// cellOf maps world-x into the cut grid, clamped.
func cellOf(x, minX, cell float64) int {
	c := int((x - minX) / cell)
	if c < 0 {
		c = 0
	}
	if c >= GridCols {
		c = GridCols - 1
	}
	return c
}

// assign lists, per shard, the ascending block indices whose x zone
// intersects the shard's ownership range. All-NaN blocks are assigned
// nowhere: their points are canvas-culled on every path.
func assign(src data.PointSource, l *Layout) [][]int {
	blocks := make([][]int, l.N)
	nb := src.NumBlocks()
	for b := 0; b < nb; b++ {
		z := src.Zone(b)
		if z.X.Min > z.X.Max {
			continue
		}
		for i := 0; i < l.N; i++ {
			xlo, xhi := l.Range(i)
			if z.X.Max < xlo || z.X.Min >= xhi {
				continue
			}
			blocks[i] = append(blocks[i], b)
		}
	}
	return blocks
}

// Patch re-derives the layout for a grown snapshot of the same dataset
// keeping the cuts fixed, so appended points route to the shard that
// already owns their x range and no other shard's assignment semantics
// move. Block assignment is recomputed wholesale — the append may have
// grown the previously-partial tail block — but it is a zone-only sweep,
// never a point scan.
func (l *Layout) Patch(src data.PointSource) *Layout {
	nl := &Layout{
		N:         l.N,
		Cuts:      l.Cuts,
		Stamp:     src.Stamp(),
		NumBlocks: src.NumBlocks(),
		Points:    src.Len(),
	}
	nl.Blocks = assign(src, nl)
	return nl
}
