package shard_test

// The headline property of sharded execution: at ANY shard count the
// coordinator's result is bit-identical — Count exactly, Sum/Min/Max by
// float64 bit pattern — to the plain single-process raster join. These
// tests exercise both modes, all five aggregates, filtered requests (the
// needPred path), tiny point batches, cold and warm span caches, and
// appends routed through Patch.

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/geom"
	"repro/internal/gpu"
	"repro/internal/shard"
)

func scene(np, nr int, seed int64) (*data.PointSet, *data.RegionSet) {
	bounds := geom.BBox{MinX: 0, MinY: 0, MaxX: 1000, MaxY: 1000}
	rng := rand.New(rand.NewSource(seed))
	ps := &data.PointSet{
		Name: "pts",
		X:    make([]float64, np),
		Y:    make([]float64, np),
		T:    make([]int64, np),
	}
	vals := make([]float64, np)
	for i := 0; i < np; i++ {
		if rng.Float64() < 0.5 {
			ps.X[i] = 300 + rng.NormFloat64()*150
			ps.Y[i] = 600 + rng.NormFloat64()*150
		} else {
			ps.X[i] = rng.Float64() * 1000
			ps.Y[i] = rng.Float64() * 1000
		}
		ps.X[i] = math.Min(999.9, math.Max(0.1, ps.X[i]))
		ps.Y[i] = math.Min(999.9, math.Max(0.1, ps.Y[i]))
		ps.T[i] = int64(i)
		vals[i] = 1 + rng.Float64()*9
	}
	ps.Attrs = []data.Column{{Name: "v", Values: vals}}
	rs := data.VoronoiRegions("nbhd", bounds, nr, seed+1,
		data.VoronoiOptions{JitterFrac: 0.08})
	return ps, rs
}

func resultsBitIdentical(t *testing.T, got, want *core.Result, context string) {
	t.Helper()
	if got.Algorithm != want.Algorithm {
		t.Fatalf("%s: algorithm %q, want %q", context, got.Algorithm, want.Algorithm)
	}
	if got.Tiles != want.Tiles {
		t.Fatalf("%s: tiles %d, want %d", context, got.Tiles, want.Tiles)
	}
	if len(got.Stats) != len(want.Stats) {
		t.Fatalf("%s: %d vs %d regions", context, len(got.Stats), len(want.Stats))
	}
	for k := range got.Stats {
		g, w := got.Stats[k], want.Stats[k]
		if g.Count != w.Count {
			t.Fatalf("%s: region %d count %d, want %d", context, k, g.Count, w.Count)
		}
		if math.Float64bits(g.Sum) != math.Float64bits(w.Sum) {
			t.Fatalf("%s: region %d sum %v, want %v (not bit-identical)", context, k, g.Sum, w.Sum)
		}
		if math.Float64bits(g.Min) != math.Float64bits(w.Min) ||
			math.Float64bits(g.Max) != math.Float64bits(w.Max) {
			t.Fatalf("%s: region %d min/max %v/%v, want %v/%v",
				context, k, g.Min, g.Max, w.Min, w.Max)
		}
	}
}

var shardCounts = []int{1, 2, 4, 8}

// TestShardedJoinBitIdentical is the core equivalence matrix: both modes,
// all five aggregates, every shard count, against the plain local path on
// the same device (so span caches and texture pools are shared exactly as
// they are inside one server process).
func TestShardedJoinBitIdentical(t *testing.T) {
	ps, rs := scene(30_000, 10, 307)
	aggs := []struct {
		agg  core.Agg
		attr string
	}{
		{core.Count, ""}, {core.Sum, "v"}, {core.Avg, "v"},
		{core.Min, "v"}, {core.Max, "v"},
	}
	for _, mode := range []core.Mode{core.Approximate, core.Accurate} {
		dev := gpu.New()
		rj := core.NewRasterJoin(core.WithDevice(dev), core.WithMode(mode),
			core.WithResolution(256))
		for _, a := range aggs {
			req := core.Request{Points: ps, Regions: rs, Agg: a.agg, Attr: a.attr}
			want, err := rj.JoinContext(context.Background(), req)
			if err != nil {
				t.Fatal(err)
			}
			for _, n := range shardCounts {
				co := shard.New(rj, n)
				got, err := co.JoinContext(context.Background(), req)
				if err != nil {
					t.Fatalf("mode %v agg %v shards %d: %v", mode, a.agg, n, err)
				}
				ctx := "mode " + rj.Name() + " agg " + a.agg.String()
				resultsBitIdentical(t, got, want, ctx)
			}
		}
		if n := dev.LiveCanvases() + dev.LiveTextures(); n != 0 {
			t.Fatalf("device not drained after matrix: %d live objects", n)
		}
	}
}

// TestShardedJoinBitIdenticalFiltered drives the needPred and time-window
// paths: attribute filters plus a time filter mean the shard pass must
// evaluate the same predicates in the same order as the local scan.
func TestShardedJoinBitIdenticalFiltered(t *testing.T) {
	ps, rs := scene(20_000, 8, 409)
	req := core.Request{
		Points: ps, Regions: rs, Agg: core.Sum, Attr: "v",
		Filters: []core.Filter{{Attr: "v", Min: 2.5, Max: 8.5}},
		Time:    &core.TimeFilter{Start: 1_000, End: 18_000},
	}
	dev := gpu.New()
	rj := core.NewRasterJoin(core.WithDevice(dev), core.WithMode(core.Accurate),
		core.WithResolution(128))
	want, err := rj.JoinContext(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if want.TotalCount() == 0 {
		t.Fatal("filters swallowed all points; test is vacuous")
	}
	for _, n := range shardCounts {
		got, err := shard.New(rj, n).JoinContext(context.Background(), req)
		if err != nil {
			t.Fatalf("shards %d: %v", n, err)
		}
		resultsBitIdentical(t, got, want, "filtered")
	}
}

// TestShardedJoinBitIdenticalSmallBatches shrinks the point batch so shard
// passes interleave many fault/cancel checkpoints, and disables the span
// cache so both paths rasterize cold. Identity must be unaffected.
func TestShardedJoinBitIdenticalSmallBatches(t *testing.T) {
	ps, rs := scene(8_000, 6, 511)
	req := core.Request{Points: ps, Regions: rs, Agg: core.Sum, Attr: "v"}
	dev := gpu.New(gpu.WithSpanCacheBytes(0))
	rj := core.NewRasterJoin(core.WithDevice(dev), core.WithMode(core.Accurate),
		core.WithResolution(64), core.WithPointBatch(128))
	want, err := rj.JoinContext(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range shardCounts {
		got, err := shard.New(rj, n).JoinContext(context.Background(), req)
		if err != nil {
			t.Fatalf("shards %d: %v", n, err)
		}
		resultsBitIdentical(t, got, want, "small batches, cold spans")
	}
}

// TestShardedJoinAfterPatch appends points through AppendCOW, patches the
// layout (cuts stay fixed, appends route to their owning shard), and
// requires the patched sharded result to match the local join of the grown
// set bit-for-bit.
func TestShardedJoinAfterPatch(t *testing.T) {
	ps, rs := scene(10_000, 8, 613)
	tail, _ := scene(3_000, 1, 617)
	tail.Name = ps.Name
	for i := range tail.T {
		tail.T[i] = int64(len(ps.T) + i)
	}
	dev := gpu.New()
	rj := core.NewRasterJoin(core.WithDevice(dev), core.WithMode(core.Accurate),
		core.WithResolution(128))
	req := core.Request{Points: ps, Regions: rs, Agg: core.Sum, Attr: "v"}

	for _, n := range shardCounts {
		co := shard.New(rj, n)
		if _, err := co.JoinContext(context.Background(), req); err != nil {
			t.Fatal(err)
		}
		grown, err := ps.AppendCOW(tail)
		if err != nil {
			t.Fatal(err)
		}
		if !co.Patch(ps.Name, grown.Source()) {
			t.Fatalf("shards %d: patch found no cached layout", n)
		}
		greq := core.Request{Points: grown, Regions: rs, Agg: core.Sum, Attr: "v"}
		want, err := rj.JoinContext(context.Background(), greq)
		if err != nil {
			t.Fatal(err)
		}
		got, err := co.JoinContext(context.Background(), greq)
		if err != nil {
			t.Fatalf("shards %d after patch: %v", n, err)
		}
		resultsBitIdentical(t, got, want, "after patch")
		if co.Layouts() != 1 {
			t.Fatalf("shards %d: %d layouts cached, want 1", n, co.Layouts())
		}
	}
}

// TestLayoutOwnershipPartition checks the foundation of the identity
// argument directly: every point index is claimed by exactly one shard's
// (range, blocks) pair, at every shard count.
func TestLayoutOwnershipPartition(t *testing.T) {
	ps, _ := scene(25_000, 2, 719)
	src := ps.Source()
	for _, n := range shardCounts {
		lt := shard.Build(src, n)
		owners := make([]int, ps.Len())
		for i := 0; i < n; i++ {
			xlo, xhi := lt.Range(i)
			for _, b := range lt.Blocks[i] {
				lo, hi := src.BlockSpan(b)
				for j := lo; j < hi; j++ {
					if ps.X[j] >= xlo && ps.X[j] < xhi {
						owners[j]++
					}
				}
			}
		}
		for j, c := range owners {
			if c != 1 {
				t.Fatalf("shards %d: point %d owned by %d shards", n, j, c)
			}
		}
	}
}

// TestCanServeRejectsPolygonsFirst: the polygons-first strategy folds in an
// order a spatial partition reassociates, so the coordinator must refuse it
// (and the planner then falls back to the plain local path).
func TestCanServeRejectsPolygonsFirst(t *testing.T) {
	rj := core.NewRasterJoin(core.WithStrategy(core.PolygonsFirst))
	co := shard.New(rj, 4)
	if err := co.CanServe(core.Request{}); err == nil {
		t.Fatal("polygons-first accepted; sharded fold would not be bit-identical")
	}
	ps, rs := scene(1_000, 4, 811)
	req := core.Request{Points: ps, Regions: rs, Agg: core.Count}
	if _, err := co.JoinContext(context.Background(), req); err == nil {
		t.Fatal("JoinScattered accepted polygons-first")
	}
}

// TestDeterministicFirstError kills shards 0 and 2 and requires the error
// to name shard 0 every time — never whichever goroutine lost the race —
// and to be the honest ErrUnavailable, not a silent partial.
func TestDeterministicFirstError(t *testing.T) {
	ps, rs := scene(5_000, 4, 907)
	req := core.Request{Points: ps, Regions: rs, Agg: core.Sum, Attr: "v"}
	rj := core.NewRasterJoin(core.WithMode(core.Accurate), core.WithResolution(64))
	co := shard.New(rj, 4)
	co.Kill(0)
	co.Kill(2)
	for trial := 0; trial < 20; trial++ {
		_, err := co.JoinContext(context.Background(), req)
		if err == nil {
			t.Fatal("two shards down, query succeeded")
		}
		if !errors.Is(err, shard.ErrUnavailable) {
			t.Fatalf("trial %d: error %v, want ErrUnavailable", trial, err)
		}
		if !strings.Contains(err.Error(), "shard 0:") {
			t.Fatalf("trial %d: error %q does not name lowest failed shard 0", trial, err)
		}
	}
	co.Restart(0)
	co.Restart(2)
	if _, err := co.JoinContext(context.Background(), req); err != nil {
		t.Fatalf("after restart: %v", err)
	}
	st := co.Stats()
	if len(st) != 4 || st[0].Refused == 0 || st[2].Refused == 0 {
		t.Fatalf("stats missing refusals: %+v", st)
	}
}
