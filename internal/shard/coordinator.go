package shard

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/data"
)

// Coordinator is the scatter-gather front of sharded execution. It
// implements core.ContextJoiner by delegating the tile pipeline to the
// wrapped raster joiner's scatter driver and providing the fan-out: one
// goroutine per shard per tile, request-context propagation, deterministic
// first-error selection, and per-shard gauges. Safe for concurrent use.
type Coordinator struct {
	raster *core.RasterJoin
	n      int
	nodes  []*node

	mu      sync.Mutex
	layouts map[string]*Layout
}

// New returns a coordinator splitting execution across n in-process shard
// executors on the given raster joiner.
func New(raster *core.RasterJoin, n int) *Coordinator {
	if n < 1 {
		n = 1
	}
	c := &Coordinator{raster: raster, n: n, layouts: make(map[string]*Layout)}
	for i := 0; i < n; i++ {
		c.nodes = append(c.nodes, newNode(i, localExecutor{}))
	}
	return c
}

// NumShards returns the shard count.
func (c *Coordinator) NumShards() int { return c.n }

// Name reports the wrapped joiner's name: sharded execution is
// byte-identical to the local path, so the served Algorithm string — part
// of cached response bodies — must not change with the topology.
func (c *Coordinator) Name() string { return c.raster.Name() }

// CanServe reports whether the request decomposes bit-exactly across
// shards. Only the points-first strategy does: polygons-first folds
// region-keyed accumulators in point order, which a spatial partition
// reassociates. Rejected requests fall back to the local raster path and
// stay byte-identical that way.
func (c *Coordinator) CanServe(req core.Request) error {
	if c.raster.Strategy() != core.PointsFirst {
		return fmt.Errorf("shard: %s strategy does not decompose bit-exactly", c.raster.Strategy())
	}
	return nil
}

// Join implements core.Joiner.
func (c *Coordinator) Join(req core.Request) (*core.Result, error) {
	return c.JoinContext(context.Background(), req)
}

// JoinContext plans the layout for the request's source snapshot and runs
// the scatter driver over it.
func (c *Coordinator) JoinContext(ctx context.Context, req core.Request) (*core.Result, error) {
	src := req.Data()
	lt := c.layout(src)
	return c.raster.JoinScattered(ctx, req, &scatterPlan{c: c, layout: lt})
}

// layout returns the cached layout for the source's current snapshot,
// building it from zone maps on first use. Keyed by dataset name and
// validated by stamp: a snapshot swap (append, segment attach) rebuilds.
func (c *Coordinator) layout(src data.PointSource) *Layout {
	c.mu.Lock()
	defer c.mu.Unlock()
	if lt, ok := c.layouts[src.Name()]; ok && lt.Stamp == src.Stamp() {
		return lt
	}
	lt := Build(src, c.n)
	c.layouts[src.Name()] = lt
	return lt
}

// Patch re-keys the named dataset's layout to a grown snapshot keeping the
// cuts fixed, so appended points route to the shard that already owns their
// x range. A dataset with no cached layout is skipped (it will build lazily
// with fresh cuts on first query).
func (c *Coordinator) Patch(name string, src data.PointSource) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	lt, ok := c.layouts[name]
	if !ok {
		return false
	}
	c.layouts[name] = lt.Patch(src)
	return true
}

// Layouts returns the number of cached per-dataset layouts.
func (c *Coordinator) Layouts() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.layouts)
}

// Kill marks shard i down: new passes are refused with ErrUnavailable and
// in-flight passes are aborted. Out-of-range indices are ignored.
func (c *Coordinator) Kill(i int) {
	if i >= 0 && i < c.n {
		c.nodes[i].kill()
	}
}

// Restart brings shard i back.
func (c *Coordinator) Restart(i int) {
	if i >= 0 && i < c.n {
		c.nodes[i].restart()
	}
}

// Down reports whether shard i is marked down.
func (c *Coordinator) Down(i int) bool {
	if i < 0 || i >= c.n {
		return false
	}
	c.nodes[i].mu.Lock()
	defer c.nodes[i].mu.Unlock()
	return c.nodes[i].down
}

// Stats snapshots every shard's gauges in shard order.
func (c *Coordinator) Stats() []NodeStats {
	out := make([]NodeStats, c.n)
	for i, nd := range c.nodes {
		out[i] = nd.stats()
	}
	return out
}

// scatterPlan binds one query's layout to the coordinator's executors.
type scatterPlan struct {
	c      *Coordinator
	layout *Layout
}

// Cuts implements core.ScatterPlan.
func (p *scatterPlan) Cuts() []float64 { return p.layout.Cuts }

// Scatter fans the tile spec out to every shard and collects the partials
// in shard order. On failure the error is deterministic: the request
// context's own error wins, then the lowest-indexed shard's non-cancellation
// error — never whichever goroutine lost the race — and sibling passes are
// canceled as soon as any shard fails.
func (p *scatterPlan) Scatter(ctx context.Context, spec *core.ShardSpec) ([]*core.ShardPartial, error) {
	n := p.layout.N
	partials := make([]*core.ShardPartial, n)
	errs := make([]error, n)

	sctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		nd := p.c.nodes[i]
		xlo, xhi := p.layout.Range(i)
		blocks := p.layout.Blocks[i]
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			pt, err := nd.run(sctx, spec, xlo, xhi, blocks)
			partials[i], errs[i] = pt, err
			if err != nil {
				cancel() // stop siblings; their ctx.Canceled is discounted below
			}
		}(i)
	}
	wg.Wait()

	// The request's own termination (client gone, deadline) outranks any
	// shard-local failure — the server maps it to 499/504.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// Deterministic first error: lowest shard index whose failure is not
	// the sibling-cancellation echo. The guard below it keeps a pure
	// cancellation storm (all errors Canceled yet the request context
	// lives) from being swallowed.
	for i, err := range errs {
		if err == nil || errors.Is(err, context.Canceled) {
			continue
		}
		return nil, fmt.Errorf("shard %d: %w", i, err)
	}
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
	}
	for i := range partials {
		p.c.nodes[i].merged.Add(1)
	}
	return partials, nil
}
