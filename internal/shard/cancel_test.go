package shard_test

// Coordinator cancellation hygiene: a cancel landing mid-scatter (while
// shard point passes are running) or a failure mid-gather (after the merge
// textures are acquired) must abort promptly, leak zero goroutines, return
// every canvas and texture to the device pool, and leave the joiner able to
// serve the identical query afterwards — at every shard count, under -race.

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/gpu"
	"repro/internal/shard"
	"repro/internal/trace"
)

func awaitGoroutines(t *testing.T, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= want+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d live, want <= %d", runtime.NumGoroutine(), want+2)
		}
		time.Sleep(time.Millisecond)
	}
}

func requireDrained(t *testing.T, dev *gpu.Device, context string) {
	t.Helper()
	if n := dev.LiveCanvases(); n != 0 {
		t.Fatalf("%s: %d canvases still live", context, n)
	}
	if n := dev.LiveTextures(); n != 0 {
		t.Fatalf("%s: %d textures still live", context, n)
	}
}

// TestScatterCancelMidPass cancels while shard point passes are in flight
// (observed via the shard.batches trace counter) and verifies the abort
// contract at every shard count.
func TestScatterCancelMidPass(t *testing.T) {
	ps, rs := scene(200_000, 12, 1021)
	req := core.Request{Points: ps, Regions: rs, Agg: core.Sum, Attr: "v"}
	for _, n := range shardCounts {
		dev := gpu.New()
		rj := core.NewRasterJoin(core.WithDevice(dev), core.WithMode(core.Accurate),
			core.WithResolution(1024), core.WithPointBatch(512))
		co := shard.New(rj, n)
		baseline := runtime.NumGoroutine()

		tr := trace.New("test")
		ctx, cancel := context.WithCancel(trace.NewContext(context.Background(), tr))
		type joined struct {
			res *core.Result
			err error
		}
		done := make(chan joined, 1)
		go func() {
			res, err := co.JoinContext(ctx, req)
			done <- joined{res, err}
		}()
		waitBatch := time.Now().Add(5 * time.Second)
		for tr.Counters()["shard.batches"] == 0 {
			if time.Now().After(waitBatch) {
				t.Fatalf("shards %d: no shard batch ever ran", n)
			}
			time.Sleep(100 * time.Microsecond)
		}
		cancel()
		j := <-done
		if !errors.Is(j.err, context.Canceled) {
			t.Fatalf("shards %d: canceled join returned err=%v, want context.Canceled", n, j.err)
		}
		if j.res != nil {
			t.Fatalf("shards %d: canceled join returned a result", n)
		}
		awaitGoroutines(t, baseline)
		requireDrained(t, dev, "after mid-scatter cancel")

		// The same coordinator must now serve the query, bit-identically to
		// the plain path.
		want, err := rj.JoinContext(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		got, err := co.JoinContext(context.Background(), req)
		if err != nil {
			t.Fatalf("shards %d after cancel: %v", n, err)
		}
		resultsBitIdentical(t, got, want, "post-cancel")
		requireDrained(t, dev, "after post-cancel join")
	}
}

// TestGatherFaultReleasesResources arms the shard.gather fault site — which
// fires after the merge textures are acquired — and verifies both the Error
// and Cancel kinds release everything, at every shard count.
func TestGatherFaultReleasesResources(t *testing.T) {
	ps, rs := scene(20_000, 8, 1117)
	req := core.Request{Points: ps, Regions: rs, Agg: core.Sum, Attr: "v"}
	for _, kind := range []fault.Kind{fault.Error, fault.Cancel} {
		for _, n := range shardCounts {
			dev := gpu.New()
			rj := core.NewRasterJoin(core.WithDevice(dev), core.WithMode(core.Accurate),
				core.WithResolution(256))
			co := shard.New(rj, n)
			baseline := runtime.NumGoroutine()

			reg := fault.New(99)
			reg.Set("shard.gather", fault.Rule{Prob: 1, Kind: kind})
			ctx := fault.NewContext(context.Background(), reg)
			res, err := co.JoinContext(ctx, req)
			if err == nil || res != nil {
				t.Fatalf("kind %v shards %d: gather fault did not surface (res=%v err=%v)", kind, n, res, err)
			}
			if kind == fault.Cancel && !errors.Is(err, context.Canceled) {
				t.Fatalf("kind %v shards %d: err=%v, want context.Canceled", kind, n, err)
			}
			awaitGoroutines(t, baseline)
			requireDrained(t, dev, "after gather fault")

			// Fault cleared: identical query on the same device serves fully.
			want, err := rj.JoinContext(context.Background(), req)
			if err != nil {
				t.Fatal(err)
			}
			got, err := co.JoinContext(context.Background(), req)
			if err != nil {
				t.Fatalf("kind %v shards %d after fault: %v", kind, n, err)
			}
			resultsBitIdentical(t, got, want, "post-fault")
			requireDrained(t, dev, "after post-fault join")
		}
	}
}

// TestKillMidPassHonestError kills a shard while its pass is running: the
// query must fail with ErrUnavailable — an honest degradation, never a
// silently partial answer — and leak nothing.
func TestKillMidPassHonestError(t *testing.T) {
	ps, rs := scene(200_000, 8, 1213)
	req := core.Request{Points: ps, Regions: rs, Agg: core.Sum, Attr: "v"}
	for _, n := range []int{2, 4, 8} {
		dev := gpu.New()
		rj := core.NewRasterJoin(core.WithDevice(dev), core.WithMode(core.Accurate),
			core.WithResolution(1024), core.WithPointBatch(512))
		co := shard.New(rj, n)
		baseline := runtime.NumGoroutine()

		// A per-batch latency fault keeps every shard's pass running for
		// hundreds of milliseconds, so the kill below reliably lands
		// mid-pass rather than racing pass completion.
		reg := fault.New(7)
		reg.Set("core.pointpass", fault.Rule{Prob: 1, Kind: fault.Latency, Delay: 2 * time.Millisecond})
		tr := trace.New("test")
		ctx := trace.NewContext(fault.NewContext(context.Background(), reg), tr)
		type joined struct {
			res *core.Result
			err error
		}
		done := make(chan joined, 1)
		go func() {
			res, err := co.JoinContext(ctx, req)
			done <- joined{res, err}
		}()
		waitBatch := time.Now().Add(5 * time.Second)
		for tr.Counters()["shard.batches"] == 0 {
			if time.Now().After(waitBatch) {
				t.Fatalf("shards %d: no shard batch ever ran", n)
			}
			time.Sleep(100 * time.Microsecond)
		}
		co.Kill(n / 2)
		j := <-done
		if j.err == nil || j.res != nil {
			t.Fatalf("shards %d: kill mid-pass produced res=%v err=%v, want honest error", n, j.res, j.err)
		}
		if !errors.Is(j.err, shard.ErrUnavailable) {
			t.Fatalf("shards %d: err=%v, want ErrUnavailable", n, j.err)
		}
		awaitGoroutines(t, baseline)
		requireDrained(t, dev, "after kill mid-pass")

		co.Restart(n / 2)
		want, err := rj.JoinContext(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		got, err := co.JoinContext(context.Background(), req)
		if err != nil {
			t.Fatalf("shards %d after restart: %v", n, err)
		}
		resultsBitIdentical(t, got, want, "post-restart")
	}
}
