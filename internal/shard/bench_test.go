package shard_test

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/gpu"
	"repro/internal/shard"
)

// BenchmarkShardScaling measures scatter-gather against the local raster
// path at shard counts 1..8. On a single-core host the sharded numbers
// read as pure coordination overhead (layout routing, band merge, straddle
// replay); real cores turn the per-shard goroutines into wall-clock
// speedup. Results stay bit-identical at every count either way — the
// equivalence tests in this package enforce that; the benchmark only
// times it.
func BenchmarkShardScaling(b *testing.B) {
	ps, rs := scene(300_000, 12, 4001)
	req := core.Request{Points: ps, Regions: rs, Agg: core.Sum, Attr: "v"}
	ctx := context.Background()

	dev := gpu.New()
	rj := core.NewRasterJoin(core.WithDevice(dev), core.WithMode(core.Accurate),
		core.WithResolution(1024))
	b.Run("local", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := rj.JoinContext(ctx, req); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, n := range []int{1, 2, 4, 8} {
		co := shard.New(rj, n)
		b.Run(fmt.Sprintf("shards=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := co.JoinContext(ctx, req); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
