// Package tcache implements incremental temporal view maintenance: it
// decomposes a time-windowed aggregation query into canonical slice-aligned
// slabs (the same outward snapping the server's -time-snap applies, so
// snapped windows are automatically slab-aligned), caches the partial
// aggregate of each (query signature, slab) pair, and answers a window as a
// deterministic chronological fold of slab partials.
//
// The fold merges, never subtracts: sliding a window forward computes one
// new slab and reuses the rest, and an append to the underlying data set
// dirties only the slab(s) the new points' timestamps land in — every other
// partial stays byte-identical, because a slab partial is a pure function
// of (points inside the slab window, regions, aggregate, attribute,
// filters, canvas configuration) and the raster canvas transform derives
// from the region bounds alone.
//
// Determinism contract (DESIGN.md "Merge-not-subtract slab folding"): a
// warm fold is bit-identical to a cold fold of the same window — per-slab
// computes are deterministic and the merge order is fixed chronological
// with a compensated sum per region. Versus the legacy one-shot join over
// the whole window, COUNT and the requested MIN/MAX side are bit-identical
// (order-independent folds over the same membership) while SUM/AVG carry
// the same ε bound the geoblocks hierarchy documents: both sides are
// compensated but group terms differently. The unrequested min/max side of
// a raster RegionStat (max-of-per-pixel-mins and vice versa) does not
// decompose across slabs; it never reaches a response, and the fold keeps
// it deterministic but makes no cross-path promise about it.
//
// Entries are keyed by the PointSet's identity stamp, so an append —
// which produces a new stamp — cannot serve stale partials; Rekey migrates
// the clean slabs of the old stamp to the new one and drops the dirty ones.
package tcache

import (
	"container/list"
	"sync"
	"sync/atomic"

	"repro/internal/core"
)

// DefaultCacheBytes bounds the slab partial cache when no option overrides
// it. Partials are small (one RegionStat per region), so this holds
// thousands of slabs even over the census-tract layer.
const DefaultCacheBytes = 32 << 20

// DefaultMaxSlabs caps how many slabs one window may decompose into;
// windows wider than the cap fall through to the legacy one-shot path,
// bounding both fold fan-out and cache churn from pathological windows.
const DefaultMaxSlabs = 64

// SlabOf returns the start of the slab containing timestamp t at
// granularity gran (> 0): floor division toward negative infinity, the
// same rule qcache.SnapTime applies to window starts.
func SlabOf(t, gran int64) int64 {
	q := t / gran
	if t%gran != 0 && t < 0 {
		q--
	}
	return q * gran
}

// Partial is one cached slab partial: the per-region aggregate state of the
// query restricted to the slab's time window, plus the execution metadata
// the fold reproduces on the final Result. Callers must treat Stats as
// immutable — partials are shared between cache entries and folds.
type Partial struct {
	Stats            []core.RegionStat
	Algorithm        string
	CanvasW, CanvasH int
	Tiles            int
	PixelSize        float64
}

// partialOverhead approximates fixed per-entry bookkeeping (map slot, list
// element, headers) charged on top of the stats payload.
const partialOverhead = 192

func (p *Partial) cost(sigLen int) int64 {
	return int64(len(p.Stats))*32 + int64(sigLen) + partialOverhead
}

// key identifies one slab partial: the data snapshot (stamp), the query
// shape (sig), and the slab start. The slab width is the owning Joiner's
// granularity, which participates in sig.
type key struct {
	stamp uint64
	sig   string
	slab  int64
}

type entry struct {
	k    key
	p    *Partial
	cost int64
}

// Stats is a point-in-time snapshot of cache counters; the server surfaces
// it under /api/stats.
type Stats struct {
	Entries    int    `json:"entries"`
	Bytes      int64  `json:"bytes"`
	Capacity   int64  `json:"capacityBytes"`
	Hits       uint64 `json:"hits"`
	Misses     uint64 `json:"misses"`
	Evictions  uint64 `json:"evictions"`
	RekeyDrops uint64 `json:"rekeyDrops"`
}

// Cache is a byte-bounded LRU of slab partials; safe for concurrent use.
// It is deliberately a single-lock LRU: slab lookups are a few map probes
// per query, orders of magnitude cheaper than the joins they save, so
// sharding would buy nothing.
type Cache struct {
	mu    sync.Mutex
	cap   int64
	bytes int64
	ll    *list.List // front = most recently used
	items map[key]*list.Element

	hits       atomic.Uint64
	misses     atomic.Uint64
	evictions  atomic.Uint64
	rekeyDrops atomic.Uint64
}

// NewCache returns a cache bounded to capacityBytes (<= 0 uses
// DefaultCacheBytes).
func NewCache(capacityBytes int64) *Cache {
	if capacityBytes <= 0 {
		capacityBytes = DefaultCacheBytes
	}
	return &Cache{cap: capacityBytes, ll: list.New(), items: make(map[key]*list.Element)}
}

// removeLocked drops the element; c.mu must be held.
func (c *Cache) removeLocked(el *list.Element) {
	e := el.Value.(*entry)
	delete(c.items, e.k)
	c.ll.Remove(el)
	c.bytes -= e.cost
}

// Get returns the cached partial for (stamp, sig, slab).
func (c *Cache) Get(stamp uint64, sig string, slab int64) (*Partial, bool) {
	k := key{stamp: stamp, sig: sig, slab: slab}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[k]
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	c.ll.MoveToFront(el)
	c.hits.Add(1)
	return el.Value.(*entry).p, true
}

// Put stores a partial, evicting least-recently-used entries to stay under
// the byte budget.
func (c *Cache) Put(stamp uint64, sig string, slab int64, p *Partial) {
	k := key{stamp: stamp, sig: sig, slab: slab}
	cost := p.cost(len(sig))
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[k]; ok {
		c.removeLocked(el) // replacement, not an eviction
	}
	if cost > c.cap {
		return
	}
	for c.bytes+cost > c.cap {
		back := c.ll.Back()
		if back == nil {
			break
		}
		c.removeLocked(back)
		c.evictions.Add(1)
	}
	c.items[k] = c.ll.PushFront(&entry{k: k, p: p, cost: cost})
	c.bytes += cost
}

// Rekey migrates the entries of oldStamp to newStamp, dropping the slabs
// the dirty set names — the append-invalidation primitive. Partials for
// slabs no appended timestamp landed in stay byte-identical under the new
// snapshot (the appended tail is excluded by their time windows and the
// surviving points keep their index order), so they move; dirtied slabs
// are evicted and recompute lazily. Returns (migrated, dropped).
//
// Computes in flight during a Rekey insert under the stamp they read when
// they started; entries orphaned under the old stamp are never read again
// and age out of the LRU — a bounded perf loss, never a staleness bug.
func (c *Cache) Rekey(oldStamp, newStamp uint64, dirty map[int64]bool) (migrated, dropped int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for k, el := range c.items {
		if k.stamp != oldStamp {
			continue
		}
		if dirty[k.slab] {
			c.removeLocked(el)
			dropped++
			continue
		}
		e := el.Value.(*entry)
		c.removeLocked(el)
		nk := key{stamp: newStamp, sig: k.sig, slab: k.slab}
		c.items[nk] = c.ll.PushFront(&entry{k: nk, p: e.p, cost: e.cost})
		c.bytes += e.cost
		migrated++
	}
	c.rekeyDrops.Add(uint64(dropped))
	return migrated, dropped
}

// Len returns the number of live entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.items)
}

// Stats snapshots the counters.
func (c *Cache) Stats() Stats {
	s := Stats{
		Hits:       c.hits.Load(),
		Misses:     c.misses.Load(),
		Evictions:  c.evictions.Load(),
		RekeyDrops: c.rekeyDrops.Load(),
	}
	c.mu.Lock()
	s.Entries = len(c.items)
	s.Bytes = c.bytes
	s.Capacity = c.cap
	c.mu.Unlock()
	return s
}
