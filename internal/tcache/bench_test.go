package tcache_test

// Window-maintenance benchmarks: the steady-state warm fold (every slab
// partial cached — the slider's common case) against the cold fold a full
// invalidation would force (every slab recomputed through the raster
// join). The E21 experiment in cmd/urbane-bench measures the intermediate
// one-slab slide (1 recompute + W-1 reuses) on the live server.

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/tcache"
)

func benchScene(b *testing.B) (*core.RasterJoin, core.Request) {
	ps := buildTemporalScene(b, 100_000, 42)
	rs := queryRegions(rand.New(rand.NewSource(42)))
	raster := core.NewRasterJoin(core.WithMode(core.Accurate), core.WithResolution(256))
	return raster, core.Request{Points: ps, Regions: rs, Agg: core.Sum, Attr: "v"}
}

func BenchmarkIncrementalWindowWarm(b *testing.B) {
	raster, req := benchScene(b)
	ctx := context.Background()
	for _, w := range []int64{4, 8, 16} {
		b.Run(fmt.Sprintf("slabs=%d", w), func(b *testing.B) {
			j := tcache.New(raster, 3600, 0, 0)
			req := req
			req.Time = &core.TimeFilter{Start: 0, End: w * 3600}
			if _, err := j.JoinContext(ctx, req); err != nil { // warm every slab
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := j.JoinContext(ctx, req); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkIncrementalWindowColdAppend(b *testing.B) {
	raster, req := benchScene(b)
	ctx := context.Background()
	for _, w := range []int64{4, 8, 16} {
		b.Run(fmt.Sprintf("slabs=%d", w), func(b *testing.B) {
			req := req
			req.Time = &core.TimeFilter{Start: 0, End: w * 3600}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				j := tcache.New(raster, 3600, 0, 0) // cold cache: every slab recomputes
				b.StartTimer()
				if _, err := j.JoinContext(ctx, req); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
