package tcache_test

// Property suite for the slab fold's determinism contract: a fold of
// cached slab partials is bit-identical to a cold fold of the same window;
// versus the one-shot raster join over the whole window, COUNT/MIN/MAX are
// bit-identical and SUM/AVG carry the documented ε bound; a single-slab
// window is bit-identical to the legacy path in every field. Randomized
// over windows, granularities, aggregates, filters, NaN attributes, empty
// slabs, and points pinned exactly onto slab boundaries.

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/geom"
	"repro/internal/tcache"
)

const sceneSpan = int64(48 * 3600) // timestamps cover two days

// buildTemporalScene generates points over [0,1000]² with timestamps over
// [0, sceneSpan): a uniform wash plus two clusters, ~20% of timestamps
// snapped onto multiples of 1800 so edges sit exactly on slab boundaries
// at every granularity under test, and ~2% NaN values in attribute "v".
func buildTemporalScene(t testing.TB, n int, seed int64) *data.PointSet {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	ps := &data.PointSet{Name: "temporal"}
	v := make([]float64, 0, n)
	w := make([]float64, 0, n)
	for len(ps.X) < n {
		var x, y float64
		switch rng.Intn(3) {
		case 0:
			x, y = rng.Float64()*1000, rng.Float64()*1000
		case 1:
			x, y = 280+rng.NormFloat64()*60, 640+rng.NormFloat64()*60
		default:
			x, y = 760+rng.NormFloat64()*30, 220+rng.NormFloat64()*30
		}
		ts := rng.Int63n(sceneSpan)
		if rng.Intn(5) == 0 {
			ts = (ts / 1800) * 1800 // exactly on a slab wall
		}
		val := (rng.Float64() - 0.5) * 200
		if rng.Intn(50) == 0 {
			val = math.NaN()
		}
		ps.X = append(ps.X, x)
		ps.Y = append(ps.Y, y)
		ps.T = append(ps.T, ts)
		v = append(v, val)
		w = append(w, rng.Float64()*60)
	}
	ps.Attrs = []data.Column{{Name: "v", Values: v}, {Name: "w", Values: w}}
	ps.SortByTime()
	if err := ps.Validate(); err != nil {
		t.Fatal(err)
	}
	return ps
}

// queryRegions builds a small multi-region layer mixing convex rings,
// cell-aligned rectangles, and a ring with a hole.
func queryRegions(rng *rand.Rand) *data.RegionSet {
	rs := &data.RegionSet{Name: "q"}
	polys := []geom.Polygon{
		geom.NewPolygon(geom.RegularRing(
			geom.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000},
			50+rng.Float64()*400, 3+rng.Intn(9))),
		geom.NewPolygon(geom.RectRing(geom.BBox{
			MinX: rng.Float64() * 500, MinY: rng.Float64() * 500,
			MaxX: 500 + rng.Float64()*500, MaxY: 500 + rng.Float64()*500})),
		{
			Outer: geom.RegularRing(geom.Point{X: 400, Y: 500}, 300, 16),
			Holes: []geom.Ring{geom.RegularRing(geom.Point{X: 400, Y: 500}, 140, 12)},
		},
	}
	for i, pg := range polys {
		rs.Regions = append(rs.Regions, data.Region{ID: i, Name: "q", Poly: pg})
	}
	return rs
}

var foldAggCases = []struct {
	agg  core.Agg
	attr string
}{
	{core.Count, ""},
	{core.Sum, "v"},
	{core.Avg, "v"},
	{core.Min, "v"},
	{core.Max, "w"},
}

// bitsEq is bit-level float equality with all NaN payloads unified.
func bitsEq(a, b float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.IsNaN(a) && math.IsNaN(b)
	}
	return math.Float64bits(a) == math.Float64bits(b)
}

// sumTol is the ε bound for compensated sums folded in different orders.
func sumTol(count int64, maxAbs float64) float64 {
	return 1e-11*float64(count)*maxAbs + 1e-9
}

// requireBitIdentical asserts two results match in every field, bit for
// bit — the warm-vs-cold and single-slab contracts.
func requireBitIdentical(t *testing.T, context string, got, want *core.Result) {
	t.Helper()
	if got.Algorithm != want.Algorithm || got.CanvasW != want.CanvasW ||
		got.CanvasH != want.CanvasH || got.Tiles != want.Tiles ||
		!bitsEq(got.PixelSize, want.PixelSize) {
		t.Fatalf("%s: metadata diverged: %+v vs %+v", context, got, want)
	}
	if len(got.Stats) != len(want.Stats) {
		t.Fatalf("%s: %d regions vs %d", context, len(got.Stats), len(want.Stats))
	}
	for r := range got.Stats {
		g, w := got.Stats[r], want.Stats[r]
		if g.Count != w.Count || !bitsEq(g.Sum, w.Sum) || !bitsEq(g.Min, w.Min) || !bitsEq(g.Max, w.Max) {
			t.Fatalf("%s: region %d: %+v vs %+v", context, r, g, w)
		}
	}
}

// requireEquivalent asserts the fold matches the one-shot join under the
// documented contract, which — like the geoblocks suite — only constrains
// the fields the aggregate actually requests: counts always (bit-exact),
// the requested min/max side (bit-exact; the other side is max-of-pixel-
// mins, a quantity that does not decompose across slabs and never reaches
// a response), and sums within ε for Sum/Avg.
func requireEquivalent(t *testing.T, context string, got, want *core.Result, agg core.Agg, maxAbs float64) {
	t.Helper()
	if len(got.Stats) != len(want.Stats) {
		t.Fatalf("%s: %d regions vs %d", context, len(got.Stats), len(want.Stats))
	}
	for r := range got.Stats {
		g, w := got.Stats[r], want.Stats[r]
		if g.Count != w.Count {
			t.Fatalf("%s: region %d count %d vs %d", context, r, g.Count, w.Count)
		}
		switch agg {
		case core.Min:
			if !bitsEq(g.Min, w.Min) {
				t.Fatalf("%s: region %d min %v vs %v", context, r, g.Min, w.Min)
			}
		case core.Max:
			if !bitsEq(g.Max, w.Max) {
				t.Fatalf("%s: region %d max %v vs %v", context, r, g.Max, w.Max)
			}
		case core.Sum, core.Avg:
			switch {
			case math.IsNaN(w.Sum):
				if !math.IsNaN(g.Sum) {
					t.Fatalf("%s: region %d sum %v, want NaN", context, r, g.Sum)
				}
			case math.Abs(g.Sum-w.Sum) > sumTol(w.Count, maxAbs):
				t.Fatalf("%s: region %d sum %v vs %v (Δ %g > tol %g)",
					context, r, g.Sum, w.Sum, math.Abs(g.Sum-w.Sum), sumTol(w.Count, maxAbs))
			}
		}
	}
}

// TestFoldEquivalence is the randomized property: for every granularity
// and 60 random slab-aligned windows — including windows hanging off both
// ends of the data (empty slabs) — the fold agrees with the one-shot join,
// a second (fully warm) fold is bit-identical to the first, and a fresh
// joiner's cold fold is bit-identical to the warm one.
func TestFoldEquivalence(t *testing.T) {
	ps := buildTemporalScene(t, 4000, 2009)
	ctx := context.Background()
	for _, gran := range []int64{1800, 3600, 7200} {
		rng := rand.New(rand.NewSource(gran))
		rs := queryRegions(rng)
		raster := core.NewRasterJoin(core.WithMode(core.Accurate), core.WithResolution(128))
		warmJ := tcache.New(raster, gran, 0, 0)
		for i := 0; i < 60; i++ {
			startSlab := int64(rng.Intn(54)) - 2 // windows may start before t=0
			width := int64(1 + rng.Intn(12))
			ac := foldAggCases[i%len(foldAggCases)]
			req := core.Request{
				Points: ps, Regions: rs, Agg: ac.agg, Attr: ac.attr,
				Time: &core.TimeFilter{Start: startSlab * gran, End: (startSlab + width) * gran},
			}
			if i%3 == 0 {
				req.Filters = []core.Filter{{Attr: "w", Min: 10, Max: 50}}
			}

			first, err := warmJ.JoinContext(ctx, req)
			if err != nil {
				t.Fatalf("gran %d case %d: fold: %v", gran, i, err)
			}
			warm, err := warmJ.JoinContext(ctx, req)
			if err != nil {
				t.Fatal(err)
			}
			requireBitIdentical(t, "warm-vs-first", first, warm)

			coldJ := tcache.New(raster, gran, 0, 0)
			cold, err := coldJ.JoinContext(ctx, req)
			if err != nil {
				t.Fatal(err)
			}
			requireBitIdentical(t, "cold-vs-warm", cold, warm)

			oneShot, err := raster.JoinContext(ctx, req)
			if err != nil {
				t.Fatal(err)
			}
			requireEquivalent(t, "fold-vs-oneshot", warm, oneShot, ac.agg, 200)
		}
		if warmJ.SlabsReused() == 0 || warmJ.SlabsRecomputed() == 0 {
			t.Fatalf("gran %d: counters did not move: reused=%d recomputed=%d",
				gran, warmJ.SlabsReused(), warmJ.SlabsRecomputed())
		}
	}
}

// TestSingleSlabBitIdentical: a window of exactly one slab folds one
// partial through a single-term compensated sum — the response must be
// byte-for-byte the legacy path's, metadata included.
func TestSingleSlabBitIdentical(t *testing.T) {
	ps := buildTemporalScene(t, 3000, 7)
	rng := rand.New(rand.NewSource(11))
	rs := queryRegions(rng)
	raster := core.NewRasterJoin(core.WithMode(core.Accurate), core.WithResolution(128))
	j := tcache.New(raster, 3600, 0, 0)
	ctx := context.Background()
	for i, ac := range foldAggCases {
		req := core.Request{
			Points: ps, Regions: rs, Agg: ac.agg, Attr: ac.attr,
			Time: &core.TimeFilter{Start: int64(i) * 3600, End: int64(i+1) * 3600},
		}
		folded, err := j.JoinContext(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		direct, err := raster.JoinContext(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		requireBitIdentical(t, ac.agg.String(), folded, direct)
	}
}

// TestCanServeRouting: requests the slab fold cannot decompose delegate to
// the wrapped joiner without touching the slab machinery.
func TestCanServeRouting(t *testing.T) {
	ps := buildTemporalScene(t, 500, 3)
	rng := rand.New(rand.NewSource(5))
	rs := queryRegions(rng)
	raster := core.NewRasterJoin(core.WithMode(core.Accurate), core.WithResolution(64))
	j := tcache.New(raster, 3600, 0, 4)
	ctx := context.Background()
	for _, tc := range []struct {
		name string
		time *core.TimeFilter
	}{
		{"no_window", nil},
		{"misaligned", &core.TimeFilter{Start: 7, End: 3600}},
		{"too_many_slabs", &core.TimeFilter{Start: 0, End: 5 * 3600}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			req := core.Request{Points: ps, Regions: rs, Agg: core.Count, Time: tc.time}
			if err := j.CanServe(req); err == nil {
				t.Fatal("CanServe accepted an undecomposable request")
			}
			before := j.SlabsRecomputed()
			res, err := j.JoinContext(ctx, req)
			if err != nil {
				t.Fatal(err)
			}
			direct, err := raster.JoinContext(ctx, req)
			if err != nil {
				t.Fatal(err)
			}
			requireBitIdentical(t, tc.name, res, direct)
			if got := j.SlabsRecomputed(); got != before {
				t.Fatalf("delegated request computed %d slabs", got-before)
			}
		})
	}
}

// TestCacheRekey covers the append-invalidation primitive: clean slabs
// migrate to the new stamp, dirty ones drop, foreign stamps and signatures
// are untouched.
func TestCacheRekey(t *testing.T) {
	c := tcache.NewCache(1 << 20)
	p := &tcache.Partial{Stats: []core.RegionStat{{Count: 1}}}
	for slab := int64(0); slab < 10; slab++ {
		c.Put(1, "sig", slab*3600, p)
	}
	c.Put(1, "othersig", 0, p)
	c.Put(99, "sig", 0, p)

	dirty := map[int64]bool{3 * 3600: true, 7 * 3600: true}
	migrated, dropped := c.Rekey(1, 2, dirty)
	if migrated != 9 || dropped != 2 {
		t.Fatalf("rekey = (%d migrated, %d dropped), want (9, 2)", migrated, dropped)
	}
	if _, ok := c.Get(2, "sig", 0); !ok {
		t.Error("clean slab did not migrate to the new stamp")
	}
	if _, ok := c.Get(2, "othersig", 0); !ok {
		t.Error("other signature's clean slab did not migrate")
	}
	if _, ok := c.Get(2, "sig", 3*3600); ok {
		t.Error("dirty slab survived the rekey")
	}
	if _, ok := c.Get(1, "sig", 0); ok {
		t.Error("entry still readable under the old stamp")
	}
	if _, ok := c.Get(99, "sig", 0); !ok {
		t.Error("foreign stamp was disturbed")
	}
	if st := c.Stats(); st.RekeyDrops != 2 || st.Entries != 10 {
		t.Errorf("stats after rekey = %+v", st)
	}
}

// TestCacheEviction: the LRU respects its byte budget, counts evictions,
// and refuses entries larger than the whole cache.
func TestCacheEviction(t *testing.T) {
	c := tcache.NewCache(1000) // a few ~230-byte entries
	small := &tcache.Partial{Stats: []core.RegionStat{{Count: 1}}}
	for slab := int64(0); slab < 20; slab++ {
		c.Put(1, "sig", slab, small)
	}
	st := c.Stats()
	if st.Bytes > st.Capacity {
		t.Fatalf("cache over budget: %d > %d", st.Bytes, st.Capacity)
	}
	if st.Evictions == 0 || st.Entries >= 20 {
		t.Fatalf("no eviction happened: %+v", st)
	}
	// Most-recently-used entries survive; the oldest are gone.
	if _, ok := c.Get(1, "sig", 19); !ok {
		t.Error("most recent entry was evicted")
	}
	if _, ok := c.Get(1, "sig", 0); ok {
		t.Error("oldest entry survived past the budget")
	}

	huge := &tcache.Partial{Stats: make([]core.RegionStat, 1<<10)}
	c.Put(1, "sig", 999, huge)
	if _, ok := c.Get(1, "sig", 999); ok {
		t.Error("entry larger than the cache was admitted")
	}
}
