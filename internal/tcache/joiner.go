package tcache

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/fsum"
	"repro/internal/qcache"
	"repro/internal/trace"
)

// ErrUnsupported is wrapped by CanServe with the routing reason when a
// request cannot be answered by slab decomposition.
var ErrUnsupported = errors.New("tcache: unsupported")

// Joiner answers slab-aligned time-windowed aggregation requests as a
// chronological fold of cached slab partials, computing missing slabs
// through the wrapped joiner. It implements core.ContextJoiner; requests
// CanServe rejects delegate to the wrapped joiner unchanged.
type Joiner struct {
	next  core.ContextJoiner
	gran  int64
	limit int
	cache *Cache

	reused     atomic.Uint64
	recomputed atomic.Uint64
}

// New returns a slab joiner at the given granularity (the server's
// -time-snap bucket, > 1) over next. cacheBytes <= 0 uses
// DefaultCacheBytes; maxSlabs <= 0 uses DefaultMaxSlabs.
func New(next core.ContextJoiner, gran int64, cacheBytes int64, maxSlabs int) *Joiner {
	if maxSlabs <= 0 {
		maxSlabs = DefaultMaxSlabs
	}
	return &Joiner{next: next, gran: gran, limit: maxSlabs, cache: NewCache(cacheBytes)}
}

// Name implements core.Joiner.
func (j *Joiner) Name() string { return "slab-fold" }

// Gran returns the slab granularity in seconds.
func (j *Joiner) Gran() int64 { return j.gran }

// MaxSlabs returns the per-window slab cap.
func (j *Joiner) MaxSlabs() int { return j.limit }

// Cache exposes the slab partial cache (append rekeying, stats).
func (j *Joiner) Cache() *Cache { return j.cache }

// SlabsReused returns the lifetime count of partials served from cache.
func (j *Joiner) SlabsReused() uint64 { return j.reused.Load() }

// SlabsRecomputed returns the lifetime count of partials computed fresh.
func (j *Joiner) SlabsRecomputed() uint64 { return j.recomputed.Load() }

// CanServe reports whether the request decomposes into slabs: it needs an
// in-RAM point set (the identity stamp keys the cache), a time window
// aligned to the slab granularity on both ends — which every window the
// server snapped outward with the same granularity is — and a slab count
// within the cap.
func (j *Joiner) CanServe(req core.Request) error {
	if req.Points == nil || req.Regions == nil {
		return fmt.Errorf("%w: request needs points and regions", ErrUnsupported)
	}
	if req.Time == nil {
		return fmt.Errorf("%w: no time window to decompose", ErrUnsupported)
	}
	if j.gran <= 1 {
		return fmt.Errorf("%w: slab granularity disabled", ErrUnsupported)
	}
	if req.Time.Start%j.gran != 0 || req.Time.End%j.gran != 0 {
		return fmt.Errorf("%w: window [%d,%d) not aligned to %ds slabs",
			ErrUnsupported, req.Time.Start, req.Time.End, j.gran)
	}
	n := (req.Time.End - req.Time.Start) / j.gran
	if n < 1 {
		return fmt.Errorf("%w: empty window", ErrUnsupported)
	}
	if n > int64(j.limit) {
		return fmt.Errorf("%w: window spans %d slabs, cap is %d", ErrUnsupported, n, j.limit)
	}
	return nil
}

// requestSig canonicalizes the time-invariant part of the request: every
// field a slab partial depends on except the slab window itself. The
// granularity participates so resizing the slab width can never alias
// partials; the region set's identity stamp stands in for its geometry.
func (j *Joiner) requestSig(req core.Request) string {
	return qcache.NewSig("slab").
		Int("gran", j.gran).
		Int("regions", int64(req.Regions.Stamp())).
		Str("agg", req.Agg.String()).Str("attr", req.Attr).
		Filters("f", req.Filters).Key()
}

// Join implements core.Joiner.
func (j *Joiner) Join(req core.Request) (*core.Result, error) {
	return j.JoinContext(context.Background(), req)
}

// JoinContext answers the request as a chronological fold of slab
// partials. Missing partials are computed through the wrapped joiner with
// the request's window narrowed to one slab — the wrapped join polls ctx
// itself, so the per-slab loop delegates cancellation. The fold is the
// canonical compute path: a warm fold and a cold fold of the same window
// are bit-identical, because per-slab computes are deterministic and the
// merge runs in fixed chronological order with one compensated sum per
// region.
func (j *Joiner) JoinContext(ctx context.Context, req core.Request) (*core.Result, error) {
	if err := j.CanServe(req); err != nil {
		return j.next.JoinContext(ctx, req)
	}
	if err := req.Validate(); err != nil {
		return nil, err
	}
	sig := j.requestSig(req)
	stamp := req.Points.Stamp()
	tr := trace.FromContext(ctx)
	sp := tr.Start("tcache.fold")
	defer sp.End()

	n := int((req.Time.End - req.Time.Start) / j.gran)
	parts := make([]*Partial, n)
	var reused, recomputed int64
	for i := 0; i < n; i++ {
		slab := req.Time.Start + int64(i)*j.gran
		if p, ok := j.cache.Get(stamp, sig, slab); ok {
			parts[i] = p
			reused++
			continue
		}
		sreq := req
		sreq.Time = &core.TimeFilter{Start: slab, End: slab + j.gran}
		res, err := j.next.JoinContext(ctx, sreq)
		if err != nil {
			return nil, err
		}
		p := &Partial{
			Stats:     res.Stats,
			Algorithm: res.Algorithm,
			CanvasW:   res.CanvasW, CanvasH: res.CanvasH,
			Tiles: res.Tiles, PixelSize: res.PixelSize,
		}
		j.cache.Put(stamp, sig, slab, p)
		parts[i] = p
		recomputed++
	}
	j.reused.Add(uint64(reused))
	j.recomputed.Add(uint64(recomputed))
	tr.Count("tcache.slabs_reused", reused)
	tr.Count("tcache.slabs_recomputed", recomputed)

	// Chronological merge: counts add, min/max are monotone, sums fold
	// through one Kahan accumulator per region so the result is independent
	// of which partials came from cache. Empty slabs contribute nothing —
	// including to min/max, which are only meaningful under nonzero counts.
	regions := len(parts[0].Stats)
	stats := make([]core.RegionStat, regions)
	sums := make([]fsum.Kahan, regions)
	for _, p := range parts {
		for r := 0; r < regions; r++ {
			ps := p.Stats[r]
			if ps.Count == 0 {
				continue
			}
			s := &stats[r]
			if s.Count == 0 {
				s.Min, s.Max = ps.Min, ps.Max
			} else {
				if ps.Min < s.Min {
					s.Min = ps.Min
				}
				if ps.Max > s.Max {
					s.Max = ps.Max
				}
			}
			s.Count += ps.Count
			sums[r].Add(ps.Sum)
		}
	}
	for r := range stats {
		if stats[r].Count > 0 {
			stats[r].Sum = sums[r].Sum()
		}
	}

	// The execution metadata is slab-invariant: the canvas transform
	// derives from the region bounds alone, so every partial of one
	// signature carries identical Algorithm/canvas fields. Reporting the
	// wrapped joiner's own name keeps single-slab responses byte-identical
	// to the legacy path.
	first := parts[0]
	return &core.Result{
		Stats:     stats,
		Algorithm: first.Algorithm,
		CanvasW:   first.CanvasW, CanvasH: first.CanvasH,
		Tiles: first.Tiles, PixelSize: first.PixelSize,
	}, nil
}
