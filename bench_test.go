// Package repro's root benchmarks regenerate every evaluation exhibit as a
// testing.B benchmark — one Benchmark per experiment in DESIGN.md's index
// (E1–E9). cmd/urbane-bench prints the same rows as formatted tables with
// larger default workloads; these benches are sized so the full suite runs
// in a few minutes.
//
//	go test -bench=. -benchmem
package repro_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/cube"
	"repro/internal/data"
	"repro/internal/index"
	"repro/internal/urbane"
	"repro/internal/workload"
)

// benchPoints is the base workload size; E3 sweeps up to this.
const benchPoints = 1_000_000

var (
	benchOnce  sync.Once
	benchScene *workload.Scene
)

func getScene() *workload.Scene {
	benchOnce.Do(func() { benchScene = workload.NYC(benchPoints, 2009) })
	return benchScene
}

// subsample keeps every k-th point, preserving distribution and time order.
func subsample(ps *data.PointSet, n int) *data.PointSet {
	if n >= ps.Len() {
		return ps
	}
	idx := make([]int, 0, n)
	step := float64(ps.Len()) / float64(n)
	for i := 0; i < n; i++ {
		idx = append(idx, int(float64(i)*step))
	}
	out := ps.Select(idx)
	out.Name = ps.Name
	return out
}

func mustJoin(b *testing.B, j core.Joiner, req core.Request) *core.Result {
	b.Helper()
	res, err := j.Join(req)
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkE1MapView regenerates E1: the Figure-1 map view — taxi pickups
// in a January week aggregated over the neighborhoods, through the full
// Urbane stack.
func BenchmarkE1MapView(b *testing.B) {
	scene := getScene()
	f := urbane.New(core.NewRasterJoin(core.WithResolution(1024)))
	if err := f.AddPointSet(scene.Taxi); err != nil {
		b.Fatal(err)
	}
	if err := f.AddRegionSet(scene.Neighborhoods); err != nil {
		b.Fatal(err)
	}
	req := urbane.MapViewRequest{
		Dataset: "taxi", Layer: "neighborhoods",
		Agg: core.Count, Time: workload.JanWeek(1),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.MapView(req); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE2Pipeline regenerates E2: the raster pipeline at increasing
// canvas resolutions, approximate and accurate variants.
func BenchmarkE2Pipeline(b *testing.B) {
	scene := getScene()
	pts := subsample(scene.Taxi, 100_000)
	regions := data.VoronoiRegions("nbhd16", scene.Bounds, 16, 12,
		data.VoronoiOptions{JitterFrac: 0.12})
	req := core.Request{Points: pts, Regions: regions, Agg: core.Count}
	for _, res := range []int{128, 512, 2048} {
		for _, mode := range []core.Mode{core.Approximate, core.Accurate} {
			rj := core.NewRasterJoin(core.WithResolution(res), core.WithMode(mode))
			b.Run(fmt.Sprintf("res=%d/%v", res, mode), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					mustJoin(b, rj, req)
				}
			})
		}
	}
}

// BenchmarkE3PointsSweep regenerates E3: latency vs point count for raster
// join and the index-join baselines.
func BenchmarkE3PointsSweep(b *testing.B) {
	scene := getScene()
	regions := scene.Neighborhoods
	for _, n := range []int{125_000, 250_000, 500_000, 1_000_000} {
		pts := subsample(scene.Taxi, n)
		req := core.Request{Points: pts, Regions: regions, Agg: core.Count,
			Time: workload.JanWeek(1)}
		grid := &index.GridJoin{}
		grid.Prepare(pts)
		rtree := &index.RTreeJoin{}
		rtree.Prepare(regions)
		algos := []core.Joiner{
			core.NewRasterJoin(core.WithResolution(1024)),
			core.NewRasterJoin(core.WithResolution(1024), core.WithMode(core.Accurate)),
			grid,
			rtree,
		}
		for _, j := range algos {
			b.Run(fmt.Sprintf("n=%d/%s", n, j.Name()), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					mustJoin(b, j, req)
				}
			})
		}
	}
}

// BenchmarkE4PolygonSweep regenerates E4: latency vs region count.
func BenchmarkE4PolygonSweep(b *testing.B) {
	scene := getScene()
	pts := subsample(scene.Taxi, 500_000)
	grid := &index.GridJoin{}
	grid.Prepare(pts)
	for _, nr := range []int{64, 260, 1024} {
		regions := data.VoronoiRegions("sweep", scene.Bounds, nr, int64(nr),
			data.VoronoiOptions{JitterFrac: 0.10})
		req := core.Request{Points: pts, Regions: regions, Agg: core.Count}
		rtree := &index.RTreeJoin{}
		rtree.Prepare(regions)
		algos := []core.Joiner{
			core.NewRasterJoin(core.WithResolution(1024)),
			grid,
			rtree,
		}
		for _, j := range algos {
			b.Run(fmt.Sprintf("regions=%d/%s", nr, j.Name()), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					mustJoin(b, j, req)
				}
			})
		}
	}
}

// BenchmarkE5Accuracy regenerates E5: bounded raster join across ε, also
// reporting the measured relative error per run via ReportMetric.
func BenchmarkE5Accuracy(b *testing.B) {
	scene := getScene()
	pts := subsample(scene.Taxi, 500_000)
	regions := scene.Neighborhoods
	req := core.Request{Points: pts, Regions: regions, Agg: core.Count}
	exact, err := (&index.BruteForce{}).Join(req)
	if err != nil {
		b.Fatal(err)
	}
	for _, eps := range []float64{256, 64, 16} {
		rj := core.NewRasterJoin(core.WithEpsilon(workload.GroundMeters(eps)))
		b.Run(fmt.Sprintf("eps=%gm", eps), func(b *testing.B) {
			var res *core.Result
			for i := 0; i < b.N; i++ {
				res = mustJoin(b, rj, req)
			}
			var errSum int64
			for k := range res.Stats {
				d := res.Stats[k].Count - exact.Stats[k].Count
				if d < 0 {
					d = -d
				}
				errSum += d
			}
			b.ReportMetric(float64(errSum)/float64(exact.TotalCount()), "relerr")
			b.ReportMetric(float64(res.Tiles), "tiles")
		})
	}
}

// BenchmarkE6CubeVsRaster regenerates E6: the canned query served from the
// cube versus the same and an ad-hoc query through raster join.
func BenchmarkE6CubeVsRaster(b *testing.B) {
	scene := getScene()
	pts := subsample(scene.Taxi, 500_000)
	regions := scene.Neighborhoods
	cb, err := cube.Build(pts, cube.Config{Regions: regions, TimeBin: 86400,
		Attrs: []string{"fare"}})
	if err != nil {
		b.Fatal(err)
	}
	rj := core.NewRasterJoin(core.WithResolution(1024))
	canned := core.Request{Points: pts, Regions: regions, Agg: core.Count,
		Time: &core.TimeFilter{Start: cb.BinStart(0), End: cb.BinStart(7)}}
	adhoc := core.Request{Points: pts, Regions: regions, Agg: core.Count,
		Filters: []core.Filter{{Attr: "fare", Min: 20, Max: 1e9}}}

	b.Run("canned/cube", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			mustJoin(b, cb, canned)
		}
	})
	b.Run("canned/raster", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			mustJoin(b, rj, canned)
		}
	})
	b.Run("adhoc/raster", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			mustJoin(b, rj, adhoc)
		}
	})
	b.Run("cube-build", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := cube.Build(pts, cube.Config{Regions: regions,
				TimeBin: 86400, Attrs: []string{"fare"}}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE7Resolutions regenerates E7: the same query across Urbane's
// resolutions (neighborhoods, tracts, grid).
func BenchmarkE7Resolutions(b *testing.B) {
	scene := getScene()
	pts := subsample(scene.Taxi, 500_000)
	rj := core.NewRasterJoin(core.WithResolution(1024))
	for _, rs := range []*data.RegionSet{scene.Neighborhoods, scene.Tracts, scene.Grid} {
		req := core.Request{Points: pts, Regions: rs, Agg: core.Count,
			Time: workload.JanWeek(2)}
		b.Run(rs.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				mustJoin(b, rj, req)
			}
		})
	}
}

// BenchmarkE8Exploration regenerates E8: the data exploration view — three
// data sets by twelve time bins over selected neighborhoods.
func BenchmarkE8Exploration(b *testing.B) {
	scene := getScene()
	taxi := subsample(scene.Taxi, 400_000)
	c311 := data.Generate(data.NYC311Config(100_000, 2009, time.January, 31))
	photos := data.Generate(data.NYCPhotosConfig(50_000, 2009, time.January, 32))
	f := urbane.New(core.NewRasterJoin(core.WithResolution(1024)))
	for _, ps := range []*data.PointSet{taxi, c311, photos} {
		if err := f.AddPointSet(ps); err != nil {
			b.Fatal(err)
		}
	}
	if err := f.AddRegionSet(scene.Neighborhoods); err != nil {
		b.Fatal(err)
	}
	jan := workload.Jan2009()
	req := urbane.ExplorationRequest{
		Datasets:  []string{"taxi", "311", "photos"},
		Layer:     "neighborhoods",
		Agg:       core.Count,
		RegionIDs: []int{0, 1, 2},
		Start:     jan.Start, End: jan.End, Bins: 12,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.Explore(req); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE10Strategies regenerates E10: the execution-strategy ablation —
// points-first versus polygons-first at two region counts.
func BenchmarkE10Strategies(b *testing.B) {
	scene := getScene()
	pts := subsample(scene.Taxi, 500_000)
	for _, rs := range []*data.RegionSet{scene.Neighborhoods, scene.Tracts} {
		req := core.Request{Points: pts, Regions: rs, Agg: core.Count}
		for _, strat := range []core.Strategy{core.PointsFirst, core.PolygonsFirst} {
			rj := core.NewRasterJoin(core.WithResolution(1024), core.WithStrategy(strat))
			b.Run(fmt.Sprintf("%s/%s", rs.Name, strat), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					mustJoin(b, rj, req)
				}
			})
		}
	}
}

// BenchmarkE11Flows regenerates E11: the OD flow view — the raster flow
// join producing the origin-destination matrix.
func BenchmarkE11Flows(b *testing.B) {
	scene := getScene()
	pts := subsample(scene.Taxi, 500_000)
	rj := core.NewRasterJoin(core.WithResolution(1024))
	req := core.Request{Points: pts, Regions: scene.Neighborhoods, Agg: core.Count}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rj.FlowJoin(req, data.DropoffXAttr, data.DropoffYAttr); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE12Selectivity regenerates E12: raster join latency across
// filter selectivities (ad-hoc constraints are ~free).
func BenchmarkE12Selectivity(b *testing.B) {
	scene := getScene()
	pts := subsample(scene.Taxi, 500_000)
	rj := core.NewRasterJoin(core.WithResolution(1024))
	for _, minFare := range []float64{0, 20, 80} {
		req := core.Request{Points: pts, Regions: scene.Neighborhoods, Agg: core.Count,
			Filters: []core.Filter{{Attr: "fare", Min: minFare, Max: 1e18}}}
		b.Run(fmt.Sprintf("fare>=%g", minFare), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				mustJoin(b, rj, req)
			}
		})
	}
}

// BenchmarkE13LOD regenerates E13: accurate-join latency across polygon
// level-of-detail tolerances.
func BenchmarkE13LOD(b *testing.B) {
	scene := getScene()
	pts := subsample(scene.Taxi, 500_000)
	acc := core.NewRasterJoin(core.WithResolution(1024), core.WithMode(core.Accurate))
	for _, tol := range []float64{0, 100, 400} {
		layer := scene.Neighborhoods
		if tol > 0 {
			layer = data.SimplifyRegions(layer, tol)
		}
		req := core.Request{Points: pts, Regions: layer, Agg: core.Count}
		b.Run(fmt.Sprintf("tol=%gm", tol), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				mustJoin(b, acc, req)
			}
		})
	}
}

// benchQueryServer builds a server over the E1 scene (taxi + neighborhoods
// at resolution 1024) for the cache benchmarks.
func benchQueryServer(b *testing.B, opts ...urbane.ServerOption) *urbane.Server {
	b.Helper()
	scene := getScene()
	f := urbane.New(core.NewRasterJoin(core.WithResolution(1024)))
	if err := f.AddPointSet(scene.Taxi); err != nil {
		b.Fatal(err)
	}
	if err := f.AddRegionSet(scene.Neighborhoods); err != nil {
		b.Fatal(err)
	}
	return urbane.NewServer(f, opts...)
}

// e1MapViewBody is the E1 map-view request as the HTTP API receives it.
func e1MapViewBody(b *testing.B) []byte {
	b.Helper()
	week := workload.JanWeek(1)
	payload, err := json.Marshal(map[string]any{
		"dataset": "taxi", "layer": "neighborhoods", "agg": "count",
		"time": map[string]int64{"start": week.Start, "end": week.End},
	})
	if err != nil {
		b.Fatal(err)
	}
	return payload
}

func benchServeMapView(b *testing.B, s *urbane.Server, payload []byte) {
	b.Helper()
	req := httptest.NewRequest(http.MethodPost, "/api/mapview", bytes.NewReader(payload))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		b.Fatalf("status = %d: %s", rec.Code, rec.Body)
	}
}

// BenchmarkServerQueryUncached measures the E1 map-view workload through the
// HTTP server with the result cache disabled: every request pays the full
// raster join.
func BenchmarkServerQueryUncached(b *testing.B) {
	s := benchQueryServer(b, urbane.WithoutCache())
	payload := e1MapViewBody(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchServeMapView(b, s, payload)
	}
}

// BenchmarkServerQueryCached measures the same workload with the cache on,
// primed by one request; steady state is the hit path (key canonicalization
// + LRU lookup + response write).
func BenchmarkServerQueryCached(b *testing.B) {
	s := benchQueryServer(b)
	payload := e1MapViewBody(b)
	benchServeMapView(b, s, payload) // prime: pay the one miss up front
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchServeMapView(b, s, payload)
	}
}

// BenchmarkE9Hybrid regenerates E9: the exactness ablation — approximate
// raster join, the accurate hybrid, and the exact grid index join.
func BenchmarkE9Hybrid(b *testing.B) {
	scene := getScene()
	pts := subsample(scene.Taxi, 500_000)
	regions := scene.Neighborhoods
	req := core.Request{Points: pts, Regions: regions, Agg: core.Count}
	grid := &index.GridJoin{}
	grid.Prepare(pts)
	algos := []core.Joiner{
		core.NewRasterJoin(core.WithResolution(1024)),
		core.NewRasterJoin(core.WithResolution(1024), core.WithMode(core.Accurate)),
		grid,
	}
	for _, j := range algos {
		b.Run(j.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				mustJoin(b, j, req)
			}
		})
	}
}
