// Command urbane-server runs the Urbane demo backend: it generates the
// synthetic NYC workload, registers it with the framework, optionally
// materializes a pre-aggregation cube, and serves the JSON API.
//
// Usage:
//
//	urbane-server -addr :8080 -points 1000000 -cube
//
// Endpoints (all JSON):
//
//	GET  /api/datasets   — registered data sets and layers
//	POST /api/query      — {"stmt": "SELECT COUNT(*) FROM taxi, neighborhoods"}
//	POST /api/append     — columnar point ingest; incremental structures are patched, not rebuilt
//	POST /api/mapview    — choropleth for the map view
//	POST /api/explore    — multi-data-set time series
//	POST /api/rank       — neighborhood similarity ranking
//	GET  /api/cachestats — query-result cache counters
//	GET  /api/stats      — per-endpoint latency histograms and outcome counters
//
// The heavy read endpoints are served through a sharded query-result
// cache with request coalescing (-cache-bytes to size it, 0 to disable;
// -time-snap to quantize time filters to the workload's bucket size).
//
// Every request runs under a context carrying the -query-timeout deadline;
// the join kernels observe it between point batches (-point-batch sets the
// granularity), so an exhausted deadline aborts the render mid-join and
// returns 504. Per-stage timings travel in the X-Urbane-Trace header.
//
// -max-inflight arms admission control: at most that much weighted compute
// runs concurrently, excess requests wait in a short deadline-aware queue
// (-admit-queue, -admit-wait) and are shed with 503 + Retry-After when the
// queue is full or too slow. Cache hits and the observability endpoints
// bypass admission. -faults/-fault-seed arm deterministic fault injection
// (chaos testing only; see internal/fault).
//
// On SIGINT/SIGTERM the server stops accepting connections, drains
// in-flight requests (up to a 10s grace period), and exits cleanly.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"repro/internal/admit"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/fault"
	"repro/internal/geoblocks"
	"repro/internal/gpu"
	"repro/internal/segment"
	"repro/internal/tcache"
	"repro/internal/urbane"
	"repro/internal/workload"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], nil, nil); err != nil {
		log.Fatal(err)
	}
}

// run builds the workload and serves the API until ctx is cancelled, then
// shuts down gracefully. ready, when non-nil, receives the bound listen
// address once the server accepts connections. wrap, when non-nil, wraps
// the handler — the shutdown test uses it to hold a request in flight.
func run(ctx context.Context, args []string, ready chan<- net.Addr, wrap func(http.Handler) http.Handler) error {
	fs := flag.NewFlagSet("urbane-server", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	points := fs.Int("points", 1_000_000, "taxi points to generate")
	seed := fs.Int64("seed", 2009, "generator seed")
	buildCube := fs.Bool("cube", false, "materialize a daily pre-aggregation cube for taxi x neighborhoods")
	resolution := fs.Int("resolution", 1024, "raster join canvas resolution (longest side, pixels)")
	accurate := fs.Bool("accurate", true, "use the exact hybrid raster join")
	cacheBytes := fs.Int64("cache-bytes", urbane.DefaultCacheBytes, "query-result cache capacity in bytes (0 disables)")
	timeSnap := fs.Int64("time-snap", 1, "snap time filters outward to this granularity in seconds (1 = off)")
	queryTimeout := fs.Duration("query-timeout", 0, "per-request query deadline; exceeded queries abort mid-join and return 504 (0 = unbounded)")
	pointBatch := fs.Int("point-batch", 0, "max point vertices per draw call — the cancellation granularity of the point pass (0 = one draw)")
	pointWorkers := fs.Int("point-workers", 0, "goroutines sharding the point pass; results are identical at any setting (0 = GOMAXPROCS, 1 = sequential)")
	spanCacheBytes := fs.Int64("span-cache-bytes", gpu.DefaultSpanCacheBytes, "region span cache capacity in bytes — compiled polygon rasterizations reused across queries (0 disables)")
	maxInflight := fs.Int64("max-inflight", 0, "admission control: max weighted concurrent query computes; excess requests queue briefly then shed with 503 (0 = disabled)")
	admitQueue := fs.Int("admit-queue", admit.DefaultQueue, "admission wait-queue length; requests beyond it shed immediately")
	admitWait := fs.Duration("admit-wait", admit.DefaultMaxWait, "max time a request waits in the admission queue before shedding (bounded further by its own deadline)")
	faultSpec := fs.String("faults", "", "deterministic fault injection spec, e.g. \"core.pointpass=latency:0.2:5ms,qcache.compute=error:0.05\" (chaos testing only)")
	faultSeed := fs.Int64("fault-seed", 1, "seed for the -faults schedule; same seed = same schedule")
	geoBlocks := fs.Bool("geoblocks", false, "enable the pre-aggregated spatial hierarchy: unfiltered polygon aggregation folds stored per-cell aggregates and refines only the boundary fringe")
	geoBlocksMaxLevel := fs.Int("geoblocks-maxlevel", geoblocks.DefaultMaxLevel, "finest geoblocks pyramid level (2^L cells per side); higher = thinner fringes, more memory")
	segments := fs.Bool("segments", false, "materialize every data set into a columnar segment file and execute ad-hoc queries block-at-a-time with zone-map pruning (out-of-core under -segment-cache-bytes)")
	segCacheBytes := fs.Int64("segment-cache-bytes", segment.DefaultCacheBytes, "decoded-block cache budget per segment store in bytes; datasets larger than this stream from disk")
	incremental := fs.Bool("incremental", true, "incremental temporal view maintenance: answer slab-aligned time windows as a fold of cached per-slab partials (needs -time-snap > 1, which sets the slab width)")
	slabCacheBytes := fs.Int64("slab-cache-bytes", tcache.DefaultCacheBytes, "slab partial cache capacity in bytes")
	maxSlabs := fs.Int("max-slabs", tcache.DefaultMaxSlabs, "max slabs one window may decompose into; wider windows use the one-shot path")
	shards := fs.Int("shards", 0, "split ad-hoc raster execution across this many spatial shards via scatter-gather; results are byte-identical at any count (0 = disabled)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	log.Printf("generating NYC workload: %d taxi points...", *points)
	start := time.Now()
	scene := workload.NYC(*points, *seed)
	aux := []*data.PointSet{
		data.Generate(data.NYC311Config(*points/4, 2009, time.January, *seed+10)),
		data.Generate(data.NYCPhotosConfig(*points/8, 2009, time.January, *seed+20)),
	}
	log.Printf("generated in %v", time.Since(start).Round(time.Millisecond))

	mode := core.Approximate
	if *accurate {
		mode = core.Accurate
	}
	dev := gpu.New(gpu.WithSpanCacheBytes(*spanCacheBytes))
	f := urbane.New(core.NewRasterJoin(core.WithDevice(dev),
		core.WithMode(mode), core.WithResolution(*resolution),
		core.WithPointBatch(*pointBatch), core.WithPointWorkers(*pointWorkers)))
	for _, err := range []error{
		f.AddPointSet(scene.Taxi),
		f.AddPointSet(aux[0]),
		f.AddPointSet(aux[1]),
		f.AddRegionSet(scene.Neighborhoods),
		f.AddRegionSet(scene.Tracts),
		f.AddRegionSet(scene.Grid),
	} {
		if err != nil {
			return err
		}
	}

	if *shards > 0 {
		f.EnableSharding(*shards)
		log.Printf("spatial sharding enabled: %d shards; layouts build lazily on first query per data set", *shards)
	}

	if *geoBlocks {
		f.EnableGeoBlocks(*geoBlocksMaxLevel)
		log.Printf("geoblocks hierarchy enabled (maxlevel %d); indexes build lazily on first query per data set",
			*geoBlocksMaxLevel)
	}

	if *incremental && *timeSnap > 1 {
		f.EnableIncremental(*timeSnap, *slabCacheBytes, *maxSlabs)
		log.Printf("incremental maintenance enabled: %ds slabs, %.1f MiB partial cache, <=%d slabs per window",
			*timeSnap, float64(*slabCacheBytes)/(1<<20), *maxSlabs)
	}

	if *segments {
		dir, err := os.MkdirTemp("", "urbane-segments-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		start = time.Now()
		var segBytes int64
		for _, ps := range []*data.PointSet{scene.Taxi, aux[0], aux[1]} {
			path := filepath.Join(dir, ps.Name+".useg")
			file, err := os.Create(path)
			if err != nil {
				return err
			}
			if err := segment.Write(file, ps); err != nil {
				file.Close()
				return err
			}
			if err := file.Close(); err != nil {
				return err
			}
			st, err := segment.Open(path, segment.WithCacheBytes(*segCacheBytes))
			if err != nil {
				return err
			}
			defer st.Close()
			if err := f.AttachSegments(ps.Name, st); err != nil {
				return err
			}
			if info, err := os.Stat(path); err == nil {
				segBytes += info.Size()
			}
		}
		log.Printf("segment-backed execution enabled: %d sets, %.1f MiB on disk, %.1f MiB block cache each, built in %v",
			3, float64(segBytes)/(1<<20), float64(*segCacheBytes)/(1<<20),
			time.Since(start).Round(time.Millisecond))
	}

	if *buildCube {
		log.Printf("building daily pre-aggregation cube (taxi x neighborhoods)...")
		start = time.Now()
		c, err := f.BuildCube("taxi", "neighborhoods", 86400, []string{"fare"})
		if err != nil {
			return err
		}
		log.Printf("cube: %d cells in %v", c.MemoryCells(), time.Since(start).Round(time.Millisecond))
	}

	opts := []urbane.ServerOption{
		urbane.WithCache(*cacheBytes), urbane.WithTimeSnap(*timeSnap),
		urbane.WithQueryTimeout(*queryTimeout),
	}
	if *maxInflight > 0 {
		opts = append(opts, urbane.WithAdmission(admit.New(*maxInflight, *admitQueue, *admitWait)))
		log.Printf("admission control: max-inflight=%d queue=%d wait=%v",
			*maxInflight, *admitQueue, *admitWait)
	}
	if *faultSpec != "" {
		reg, err := fault.ParseSpec(*faultSeed, *faultSpec)
		if err != nil {
			return err
		}
		opts = append(opts, urbane.WithFaults(reg))
		log.Printf("fault injection ARMED (seed %d): %s — for chaos testing only", *faultSeed, *faultSpec)
	}
	var handler http.Handler = urbane.NewServer(f, opts...)
	if wrap != nil {
		handler = wrap(handler)
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	log.Printf("urbane backend listening on %s", ln.Addr())
	fmt.Printf("try: curl -s http://%s/api/datasets\n", ln.Addr())
	if ready != nil {
		ready <- ln.Addr()
	}

	srv := &http.Server{Handler: handler}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err // listener failed before any shutdown request
	case <-ctx.Done():
	}

	log.Printf("shutdown requested; draining in-flight requests...")
	sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		return fmt.Errorf("graceful shutdown: %w", err)
	}
	if err := <-serveErr; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	log.Printf("shutdown complete")
	return nil
}
