// Command urbane-server runs the Urbane demo backend: it generates the
// synthetic NYC workload, registers it with the framework, optionally
// materializes a pre-aggregation cube, and serves the JSON API.
//
// Usage:
//
//	urbane-server -addr :8080 -points 1000000 -cube
//
// Endpoints (all JSON):
//
//	GET  /api/datasets  — registered data sets and layers
//	POST /api/query     — {"stmt": "SELECT COUNT(*) FROM taxi, neighborhoods"}
//	POST /api/mapview   — choropleth for the map view
//	POST /api/explore   — multi-data-set time series
//	POST /api/rank      — neighborhood similarity ranking
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"time"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/urbane"
	"repro/internal/workload"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	points := flag.Int("points", 1_000_000, "taxi points to generate")
	seed := flag.Int64("seed", 2009, "generator seed")
	buildCube := flag.Bool("cube", false, "materialize a daily pre-aggregation cube for taxi x neighborhoods")
	resolution := flag.Int("resolution", 1024, "raster join canvas resolution (longest side, pixels)")
	accurate := flag.Bool("accurate", true, "use the exact hybrid raster join")
	flag.Parse()

	log.Printf("generating NYC workload: %d taxi points...", *points)
	start := time.Now()
	scene := workload.NYC(*points, *seed)
	aux := []*data.PointSet{
		data.Generate(data.NYC311Config(*points/4, 2009, time.January, *seed+10)),
		data.Generate(data.NYCPhotosConfig(*points/8, 2009, time.January, *seed+20)),
	}
	log.Printf("generated in %v", time.Since(start).Round(time.Millisecond))

	mode := core.Approximate
	if *accurate {
		mode = core.Accurate
	}
	f := urbane.New(core.NewRasterJoin(core.WithMode(mode), core.WithResolution(*resolution)))
	must := func(err error) {
		if err != nil {
			log.Fatal(err)
		}
	}
	must(f.AddPointSet(scene.Taxi))
	for _, ps := range aux {
		must(f.AddPointSet(ps))
	}
	must(f.AddRegionSet(scene.Neighborhoods))
	must(f.AddRegionSet(scene.Tracts))
	must(f.AddRegionSet(scene.Grid))

	if *buildCube {
		log.Printf("building daily pre-aggregation cube (taxi x neighborhoods)...")
		start = time.Now()
		c, err := f.BuildCube("taxi", "neighborhoods", 86400, []string{"fare"})
		must(err)
		log.Printf("cube: %d cells in %v", c.MemoryCells(), time.Since(start).Round(time.Millisecond))
	}

	log.Printf("urbane backend listening on %s", *addr)
	fmt.Printf("try: curl -s localhost%s/api/datasets\n", *addr)
	log.Fatal(http.ListenAndServe(*addr, urbane.NewServer(f)))
}
