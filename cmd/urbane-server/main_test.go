package main

import (
	"context"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"testing"
	"time"
)

// TestGracefulShutdownSIGTERM exercises the full signal path: the server
// comes up, a request is held in flight, the test process receives a real
// SIGTERM, and the server must (a) let the in-flight request finish with
// 200 and (b) return from run without error.
func TestGracefulShutdownSIGTERM(t *testing.T) {
	// Same signal wiring as main(); NotifyContext absorbs the SIGTERM so
	// the test binary survives it.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM)
	defer stop()

	inFlight := make(chan struct{})
	release := make(chan struct{})
	wrap := func(h http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			close(inFlight) // request has reached the handler
			<-release       // hold it while SIGTERM arrives
			h.ServeHTTP(w, r)
		})
	}

	ready := make(chan net.Addr, 1)
	runErr := make(chan error, 1)
	go func() {
		runErr <- run(ctx, []string{"-addr", "127.0.0.1:0", "-points", "2000"}, ready, wrap)
	}()

	var addr net.Addr
	select {
	case addr = <-ready:
	case err := <-runErr:
		t.Fatalf("run exited before listening: %v", err)
	case <-time.After(60 * time.Second):
		t.Fatal("server did not come up")
	}

	type result struct {
		status int
		body   []byte
		err    error
	}
	resc := make(chan result, 1)
	go func() {
		resp, err := http.Get("http://" + addr.String() + "/api/datasets")
		if err != nil {
			resc <- result{err: err}
			return
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		resc <- result{status: resp.StatusCode, body: body}
	}()

	select {
	case <-inFlight:
	case <-time.After(10 * time.Second):
		t.Fatal("request never reached the handler")
	}

	// SIGTERM lands while the request is still being served.
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	// Give Shutdown a moment to begin draining, then let the request go.
	time.Sleep(100 * time.Millisecond)
	close(release)

	select {
	case res := <-resc:
		if res.err != nil {
			t.Fatalf("in-flight request failed during shutdown: %v", res.err)
		}
		if res.status != http.StatusOK {
			t.Fatalf("in-flight request got status %d, body %s", res.status, res.body)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("in-flight request never completed")
	}

	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("run returned error after graceful shutdown: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("run did not exit after SIGTERM")
	}
}

// TestShutdownViaContextCancel covers the plain context-cancellation path
// (what SIGINT triggers through NotifyContext) with no traffic at all.
func TestShutdownViaContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan net.Addr, 1)
	runErr := make(chan error, 1)
	go func() {
		runErr <- run(ctx, []string{"-addr", "127.0.0.1:0", "-points", "2000"}, ready, nil)
	}()
	select {
	case <-ready:
	case err := <-runErr:
		t.Fatalf("run exited before listening: %v", err)
	case <-time.After(60 * time.Second):
		t.Fatal("server did not come up")
	}
	cancel()
	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("run returned error on cancel: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("run did not exit after context cancel")
	}
}
