package main

import (
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestStatsSmoke is the end-to-end deadline smoke test behind `make
// stats-smoke`: boot the real server with a -query-timeout no raster join
// can meet, fire a map-view query, and require (a) a 504 with the
// query_timeout error code and (b) a nonzero timeout counter — with no
// render resources left live — in GET /api/stats.
func TestStatsSmoke(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ready := make(chan net.Addr, 1)
	runErr := make(chan error, 1)
	go func() {
		runErr <- run(ctx, []string{
			"-addr", "127.0.0.1:0", "-points", "20000",
			"-query-timeout", "1ms", "-point-batch", "64",
		}, ready, nil)
	}()

	var addr net.Addr
	select {
	case addr = <-ready:
	case err := <-runErr:
		t.Fatalf("run exited before listening: %v", err)
	case <-time.After(60 * time.Second):
		t.Fatal("server did not come up")
	}
	base := "http://" + addr.String()

	resp, err := http.Post(base+"/api/mapview", "application/json",
		strings.NewReader(`{"dataset":"taxi","layer":"neighborhoods","agg":"count"}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("mapview under 1ms deadline: status = %d, want 504; body %s",
			resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "query_timeout") {
		t.Errorf("504 body lacks query_timeout code: %s", body)
	}
	if resp.Header.Get("X-Urbane-Elapsed-Ms") == "" {
		t.Error("504 response missing X-Urbane-Elapsed-Ms header")
	}

	resp, err = http.Get(base + "/api/stats")
	if err != nil {
		t.Fatal(err)
	}
	statsBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/api/stats status = %d: %s", resp.StatusCode, statsBody)
	}
	var stats struct {
		QueryTimeoutMs float64 `json:"queryTimeoutMs"`
		LiveCanvases   int     `json:"liveCanvases"`
		LiveTextures   int     `json:"liveTextures"`
		Endpoints      []struct {
			Name     string `json:"name"`
			Timeouts uint64 `json:"timeouts"`
			InFlight int64  `json:"inFlight"`
		} `json:"endpoints"`
	}
	if err := json.Unmarshal(statsBody, &stats); err != nil {
		t.Fatalf("decoding /api/stats: %v (%s)", err, statsBody)
	}
	if stats.QueryTimeoutMs != 1 {
		t.Errorf("queryTimeoutMs = %v, want 1", stats.QueryTimeoutMs)
	}
	if stats.LiveCanvases != 0 || stats.LiveTextures != 0 {
		t.Errorf("render resources live after timeout: canvases=%d textures=%d",
			stats.LiveCanvases, stats.LiveTextures)
	}
	found := false
	for _, ep := range stats.Endpoints {
		if ep.Name == "/api/mapview" {
			found = true
			if ep.Timeouts == 0 {
				t.Errorf("/api/mapview timeouts = 0, want > 0: %s", statsBody)
			}
			if ep.InFlight != 0 {
				t.Errorf("/api/mapview inFlight = %d, want 0", ep.InFlight)
			}
		}
	}
	if !found {
		t.Errorf("/api/mapview missing from stats: %s", statsBody)
	}

	cancel()
	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("run returned error on cancel: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("run did not exit after context cancel")
	}
}
