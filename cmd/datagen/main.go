// Command datagen materializes the synthetic urban data sets to disk:
// point sets as CSV (x,y,t,attrs... in Web-Mercator meters / unix seconds)
// and region layers as GeoJSON.
//
// Usage:
//
//	datagen -out ./testdata -points 100000 -seed 2009
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"repro/internal/data"
	"repro/internal/workload"
)

func main() {
	out := flag.String("out", ".", "output directory")
	points := flag.Int("points", 100_000, "taxi points (311 gets 1/4, photos 1/8)")
	seed := flag.Int64("seed", 2009, "generator seed")
	flag.Parse()

	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}
	scene := workload.NYC(*points, *seed)
	sets := []*data.PointSet{
		scene.Taxi,
		data.Generate(data.NYC311Config(*points/4, 2009, time.January, *seed+10)),
		data.Generate(data.NYCPhotosConfig(*points/8, 2009, time.January, *seed+20)),
	}
	for _, ps := range sets {
		path := filepath.Join(*out, ps.Name+".csv")
		if err := writeCSV(path, ps); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s (%d points)\n", path, ps.Len())
	}
	for _, rs := range []*data.RegionSet{scene.Neighborhoods, scene.Tracts, scene.Grid} {
		path := filepath.Join(*out, rs.Name+".geojson")
		if err := writeGeoJSON(path, rs); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s (%d regions)\n", path, rs.Len())
	}
}

func writeCSV(path string, ps *data.PointSet) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := data.WriteCSV(f, ps); err != nil {
		return err
	}
	return f.Close()
}

func writeGeoJSON(path string, rs *data.RegionSet) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := data.WriteGeoJSON(f, rs); err != nil {
		return err
	}
	return f.Close()
}
