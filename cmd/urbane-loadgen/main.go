// Command urbane-loadgen replays the deterministic interactive workload
// mix against a running urbane-server over real HTTP, at N virtual users.
// It is the offered-load half of the overload-protection experiments: point
// it at a server started with -max-inflight and sweep -vus to trace the
// shed-rate curve (EXPERIMENTS.md E18).
//
// Every response is checked against the chaos response contract
// (internal/chaos.ValidateResponse): an allowed status, the JSON error
// envelope on failures, Retry-After on 503s. Contract violations are
// reported and make the process exit nonzero — the generator doubles as an
// end-to-end conformance probe.
//
// Usage:
//
//	urbane-loadgen -addr http://127.0.0.1:8080 -vus 32 -n 50 -json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/chaos"
	"repro/internal/workload"
)

type latencySummary struct {
	P50 float64 `json:"p50"`
	P90 float64 `json:"p90"`
	P99 float64 `json:"p99"`
	Max float64 `json:"max"`
}

type report struct {
	Addr        string         `json:"addr"`
	VUs         int            `json:"vus"`
	PerVU       int            `json:"requestsPerVU"`
	Seed        int64          `json:"seed"`
	Total       int            `json:"total"`
	Errors      int            `json:"transportErrors"`
	DurationSec float64        `json:"durationSec"`
	Throughput  float64        `json:"requestsPerSec"`
	ShedRate    float64        `json:"shedRate"`
	ByStatus    map[string]int `json:"byStatus"`
	ByKind      map[string]int `json:"byKind"`
	LatencyMs   latencySummary `json:"latencyMs"`
	Violations  []string       `json:"violations"`
}

// vuResult is one virtual user's tally, merged after the run.
type vuResult struct {
	byStatus   map[int]int
	byKind     map[string]int
	latencies  []time.Duration
	violations []string
	errors     int
}

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8080", "base URL of the target urbane-server")
	vus := flag.Int("vus", 8, "concurrent virtual users")
	n := flag.Int("n", 50, "requests per virtual user")
	seed := flag.Int64("seed", 1, "workload mix seed; VU k replays mix seed+k")
	timeout := flag.Duration("timeout", 15*time.Second, "per-request client timeout")
	asJSON := flag.Bool("json", false, "emit the report as JSON (machine-readable)")
	flag.Parse()

	base := strings.TrimSuffix(*addr, "/")
	client := &http.Client{Timeout: *timeout, Transport: &http.Transport{
		MaxIdleConns: *vus, MaxIdleConnsPerHost: *vus,
	}}

	results := make([]*vuResult, *vus)
	start := time.Now()
	var wg sync.WaitGroup
	for vu := 0; vu < *vus; vu++ {
		wg.Add(1)
		go func(vu int) {
			defer wg.Done()
			results[vu] = runVU(client, base, workload.ServerMixConfig(), *seed+int64(vu), vu, *n)
		}(vu)
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := report{
		Addr: base, VUs: *vus, PerVU: *n, Seed: *seed,
		DurationSec: elapsed.Seconds(),
		ByStatus:    map[string]int{}, ByKind: map[string]int{},
	}
	var lats []time.Duration
	for _, r := range results {
		for s, c := range r.byStatus {
			rep.ByStatus[strconv.Itoa(s)] += c
			rep.Total += c
		}
		for k, c := range r.byKind {
			rep.ByKind[k] += c
		}
		lats = append(lats, r.latencies...)
		rep.Violations = append(rep.Violations, r.violations...)
		rep.Errors += r.errors
	}
	if rep.Total > 0 {
		rep.Throughput = float64(rep.Total) / elapsed.Seconds()
		rep.ShedRate = float64(rep.ByStatus["503"]) / float64(rep.Total)
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	if len(lats) > 0 {
		ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
		rep.LatencyMs = latencySummary{
			P50: ms(lats[len(lats)*50/100]),
			P90: ms(lats[len(lats)*90/100]),
			P99: ms(lats[len(lats)*99/100]),
			Max: ms(lats[len(lats)-1]),
		}
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		_ = enc.Encode(rep)
	} else {
		printHuman(rep)
	}
	if len(rep.Violations) > 0 || rep.Errors > 0 {
		os.Exit(1)
	}
}

func runVU(client *http.Client, base string, cfg workload.MixConfig, seed int64, vu, n int) *vuResult {
	res := &vuResult{byStatus: map[int]int{}, byKind: map[string]int{}}
	mix := workload.NewMix(cfg, seed)
	for i := 0; i < n; i++ {
		hr := mix.Next()
		var body io.Reader
		if hr.Body != "" {
			body = strings.NewReader(hr.Body)
		}
		req, err := http.NewRequestWithContext(context.Background(), hr.Method, base+hr.Path, body)
		if err != nil {
			res.errors++
			continue
		}
		if hr.Body != "" {
			req.Header.Set("Content-Type", "application/json")
		}
		t0 := time.Now()
		resp, err := client.Do(req)
		if err != nil {
			res.errors++
			if res.errors <= 3 {
				res.violations = append(res.violations, fmt.Sprintf("vu%d req%d: transport: %v", vu, i, err))
			}
			continue
		}
		payload, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		res.latencies = append(res.latencies, time.Since(t0))
		res.byStatus[resp.StatusCode]++
		res.byKind[hr.Kind]++
		if err != nil {
			res.errors++
			continue
		}
		if verr := chaos.ValidateResponse(hr.Method, hr.Path, resp.StatusCode, resp.Header, payload); verr != nil {
			if len(res.violations) < 10 {
				res.violations = append(res.violations, fmt.Sprintf("vu%d req%d: %v", vu, i, verr))
			}
		}
	}
	return res
}

func printHuman(rep report) {
	fmt.Printf("%d requests in %.2fs (%.1f req/s) against %s, %d VUs\n",
		rep.Total, rep.DurationSec, rep.Throughput, rep.Addr, rep.VUs)
	statuses := make([]string, 0, len(rep.ByStatus))
	for s := range rep.ByStatus {
		statuses = append(statuses, s)
	}
	sort.Strings(statuses)
	for _, s := range statuses {
		fmt.Printf("  %s: %d\n", s, rep.ByStatus[s])
	}
	fmt.Printf("shed rate: %.1f%%   latency ms p50=%.1f p90=%.1f p99=%.1f max=%.1f\n",
		100*rep.ShedRate, rep.LatencyMs.P50, rep.LatencyMs.P90, rep.LatencyMs.P99, rep.LatencyMs.Max)
	if rep.Errors > 0 {
		fmt.Printf("transport errors: %d\n", rep.Errors)
	}
	for _, v := range rep.Violations {
		fmt.Printf("VIOLATION: %s\n", v)
	}
}
