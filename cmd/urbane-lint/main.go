// Command urbane-lint is the project's static-analysis multichecker: it
// type-checks the requested packages and runs the concurrency, numerics,
// and flow-sensitive invariant analyzers tuned to this codebase's failure
// modes.
//
// Usage:
//
//	urbane-lint [-analyzers name,name] [-list] [-json]
//	            [-baseline file] [-write-baseline file] [packages]
//
// With no packages it analyzes ./... . Exit status: 0 clean, 1 findings,
// 2 usage or load errors. Suppress an individual finding with
//
//	//lint:ignore <analyzer> <reason>
//
// on (or on the line above) the flagged line; the reason is mandatory.
// When the full analyzer set runs, every //lint:ignore directive is
// itself audited (pseudo-analyzer "suppress"): directives that are
// malformed, name an unknown analyzer, or no longer suppress anything
// are findings.
//
// -json emits findings as a JSON array (paths repo-relative) instead of
// text. -baseline file tolerates findings recorded in the committed
// baseline — matching on (file, analyzer, message), not line numbers, so
// CI judges a change only on the findings it introduces. -write-baseline
// regenerates that file from the current findings.
//
// The checks:
//
//	sharedwrite — unsynchronized writes to captured variables in
//	              goroutine fan-out loops
//	waitgroup   — Add inside the goroutine, non-deferred Done,
//	              WaitGroup copied by value
//	floataccum  — naive float += reduction loops (suggests internal/fsum)
//	handlerlock — HTTP handlers touching mutex-guarded state lock-free
//	ctxflow     — exported query-path functions spawning goroutines or
//	              looping over draw calls without a context.Context
//	poolleak    — CFG/dataflow: texture/canvas acquires that miss their
//	              release on some path to return
//	gaugepair   — CFG/dataflow: gauge increments not balanced by a
//	              decrement on every path
//	ctxpoll     — kernel draw loops that hold a context but never poll it
//	envelope    — urbane handlers bypassing the JSON error envelope
//	detrand     — process-global or clock-seeded math/rand in the
//	              replay-deterministic packages
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis/ctxflow"
	"repro/internal/analysis/ctxpoll"
	"repro/internal/analysis/detrand"
	"repro/internal/analysis/envelope"
	"repro/internal/analysis/floataccum"
	"repro/internal/analysis/framework"
	"repro/internal/analysis/gaugepair"
	"repro/internal/analysis/handlerlock"
	"repro/internal/analysis/loader"
	"repro/internal/analysis/poolleak"
	"repro/internal/analysis/sharedwrite"
	"repro/internal/analysis/waitgroup"
)

var all = []*framework.Analyzer{
	sharedwrite.Analyzer,
	waitgroup.Analyzer,
	floataccum.Analyzer,
	handlerlock.Analyzer,
	ctxflow.Analyzer,
	poolleak.Analyzer,
	gaugepair.Analyzer,
	ctxpoll.Analyzer,
	envelope.Analyzer,
	detrand.Analyzer,
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout))
}

func run(args []string, out *os.File) int {
	fs := flag.NewFlagSet("urbane-lint", flag.ContinueOnError)
	names := fs.String("analyzers", "", "comma-separated subset of analyzers to run (default: all, which also enables the suppression audit)")
	list := fs.Bool("list", false, "list available analyzers and exit")
	verbose := fs.Bool("v", false, "log each package as it is analyzed")
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array instead of text")
	baselinePath := fs.String("baseline", "", "tolerate findings recorded in this baseline file")
	writeBaseline := fs.String("write-baseline", "", "write current findings to this baseline file and exit 0")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range all {
			fmt.Fprintf(out, "%-12s %s\n", a.Name, a.Doc)
		}
		fmt.Fprintf(out, "%-12s %s\n", framework.AuditName,
			"(automatic with the full set) audits //lint:ignore directives: malformed, unknown analyzer, or stale")
		return 0
	}
	analyzers, err := selectAnalyzers(*names)
	if err != nil {
		fmt.Fprintln(os.Stderr, "urbane-lint:", err)
		return 2
	}
	// The suppression audit needs every analyzer's verdict on every
	// directive, so it only runs with the full set.
	audit := len(analyzers) == len(all)
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "urbane-lint:", err)
		return 2
	}
	pkgs, err := loader.Load(wd, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "urbane-lint:", err)
		return 2
	}

	findings := []framework.Finding{}
	for _, pkg := range pkgs {
		if *verbose && !*jsonOut {
			fmt.Fprintf(out, "# %s\n", pkg.ImportPath)
		}
		diags, err := framework.RunAll(analyzers, pkg.Fset, pkg.Files, pkg.Types, pkg.Info, audit)
		if err != nil {
			fmt.Fprintln(os.Stderr, "urbane-lint:", err)
			return 2
		}
		for _, d := range diags {
			findings = append(findings, framework.FindingOf(d, wd))
		}
	}

	if *writeBaseline != "" {
		if err := framework.WriteBaseline(*writeBaseline, findings); err != nil {
			fmt.Fprintln(os.Stderr, "urbane-lint:", err)
			return 2
		}
		fmt.Fprintf(out, "urbane-lint: wrote %d finding(s) to %s\n", len(findings), *writeBaseline)
		return 0
	}

	known := []framework.Finding{}
	fresh := findings
	if *baselinePath != "" {
		b, err := framework.LoadBaseline(*baselinePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "urbane-lint:", err)
			return 2
		}
		known, fresh = b.Split(findings)
		if fresh == nil {
			fresh = []framework.Finding{} // -json must emit [], not null
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(fresh); err != nil {
			fmt.Fprintln(os.Stderr, "urbane-lint:", err)
			return 2
		}
	} else {
		for _, f := range fresh {
			fmt.Fprintf(out, "%s:%d:%d: [%s] %s\n", f.File, f.Line, f.Column, f.Analyzer, f.Message)
		}
		if len(known) > 0 {
			fmt.Fprintf(out, "urbane-lint: %d baselined finding(s) tolerated\n", len(known))
		}
		if len(fresh) > 0 {
			fmt.Fprintf(out, "urbane-lint: %d finding(s)\n", len(fresh))
		}
	}
	if len(fresh) > 0 {
		return 1
	}
	return 0
}

func selectAnalyzers(names string) ([]*framework.Analyzer, error) {
	if names == "" {
		return all, nil
	}
	byName := make(map[string]*framework.Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	var picked []*framework.Analyzer
	for _, n := range strings.Split(names, ",") {
		a, ok := byName[strings.TrimSpace(n)]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q (use -list)", n)
		}
		picked = append(picked, a)
	}
	return picked, nil
}
