// Command urbane-lint is the project's static-analysis multichecker: it
// type-checks the requested packages and runs the concurrency and
// numerics analyzers tuned to this codebase's failure modes.
//
// Usage:
//
//	urbane-lint [-analyzers name,name] [-list] [packages]
//
// With no packages it analyzes ./... . Exit status: 0 clean, 1 findings,
// 2 usage or load errors. Suppress an individual finding with
//
//	//lint:ignore <analyzer> <reason>
//
// on (or on the line above) the flagged line; the reason is mandatory.
//
// The checks:
//
//	sharedwrite — unsynchronized writes to captured variables in
//	              goroutine fan-out loops
//	waitgroup   — Add inside the goroutine, non-deferred Done,
//	              WaitGroup copied by value
//	floataccum  — naive float += reduction loops (suggests internal/fsum)
//	handlerlock — HTTP handlers touching mutex-guarded state lock-free
//	ctxflow     — exported query-path functions spawning goroutines or
//	              looping over draw calls without a context.Context
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis/ctxflow"
	"repro/internal/analysis/floataccum"
	"repro/internal/analysis/framework"
	"repro/internal/analysis/handlerlock"
	"repro/internal/analysis/loader"
	"repro/internal/analysis/sharedwrite"
	"repro/internal/analysis/waitgroup"
)

var all = []*framework.Analyzer{
	sharedwrite.Analyzer,
	waitgroup.Analyzer,
	floataccum.Analyzer,
	handlerlock.Analyzer,
	ctxflow.Analyzer,
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout))
}

func run(args []string, out *os.File) int {
	fs := flag.NewFlagSet("urbane-lint", flag.ContinueOnError)
	names := fs.String("analyzers", "", "comma-separated subset of analyzers to run (default: all)")
	list := fs.Bool("list", false, "list available analyzers and exit")
	verbose := fs.Bool("v", false, "log each package as it is analyzed")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range all {
			fmt.Fprintf(out, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	analyzers, err := selectAnalyzers(*names)
	if err != nil {
		fmt.Fprintln(os.Stderr, "urbane-lint:", err)
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "urbane-lint:", err)
		return 2
	}
	pkgs, err := loader.Load(wd, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "urbane-lint:", err)
		return 2
	}

	findings := 0
	for _, pkg := range pkgs {
		if *verbose {
			fmt.Fprintf(out, "# %s\n", pkg.ImportPath)
		}
		for _, a := range analyzers {
			diags, err := framework.RunAnalyzer(a, pkg.Fset, pkg.Files, pkg.Types, pkg.Info)
			if err != nil {
				fmt.Fprintln(os.Stderr, "urbane-lint:", err)
				return 2
			}
			for _, d := range diags {
				fmt.Fprintln(out, d)
				findings++
			}
		}
	}
	if findings > 0 {
		fmt.Fprintf(out, "urbane-lint: %d finding(s)\n", findings)
		return 1
	}
	return 0
}

func selectAnalyzers(names string) ([]*framework.Analyzer, error) {
	if names == "" {
		return all, nil
	}
	byName := make(map[string]*framework.Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	var picked []*framework.Analyzer
	for _, n := range strings.Split(names, ",") {
		a, ok := byName[strings.TrimSpace(n)]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q (use -list)", n)
		}
		picked = append(picked, a)
	}
	return picked, nil
}
