// Command urbane-cli is an interactive SQL shell over the spatial
// aggregation engines: it generates (or loads) a workload, then reads
// statements of the paper's query form and prints the per-region results
// with the planner's routing decision and latency.
//
//	urbane-cli -points 500000
//	urbane> SELECT COUNT(*) FROM taxi, neighborhoods GROUP BY id
//	urbane> SELECT AVG(fare) FROM taxi, neighborhoods WHERE fare BETWEEN 5 AND 30
//	urbane> \datasets
//	urbane> \quit
//
// Point sets can also be loaded from datagen output:
//
//	urbane-cli -load ./testdata
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/urbane"
	"repro/internal/workload"
)

func main() {
	points := flag.Int("points", 500_000, "taxi points to generate (ignored with -load)")
	seed := flag.Int64("seed", 2009, "generator seed")
	load := flag.String("load", "", "directory of datagen output to load instead of generating")
	buildCube := flag.Bool("cube", true, "materialize a daily cube for taxi x neighborhoods")
	accurate := flag.Bool("accurate", true, "use the exact hybrid raster join")
	top := flag.Int("top", 10, "result rows to print")
	flag.Parse()

	mode := core.Approximate
	if *accurate {
		mode = core.Accurate
	}
	f := urbane.New(core.NewRasterJoin(core.WithMode(mode), core.WithResolution(1024)))

	if *load != "" {
		if err := loadDir(f, *load); err != nil {
			log.Fatal(err)
		}
	} else {
		fmt.Fprintf(os.Stderr, "generating %d taxi points...\n", *points)
		scene := workload.NYC(*points, *seed)
		must(f.AddPointSet(scene.Taxi))
		must(f.AddRegionSet(scene.Neighborhoods))
		must(f.AddRegionSet(scene.Tracts))
		must(f.AddRegionSet(scene.Grid))
		if *buildCube {
			if _, err := f.BuildCube("taxi", "neighborhoods", 86400, []string{"fare"}); err != nil {
				log.Fatal(err)
			}
		}
	}
	fmt.Fprintln(os.Stderr, `ready — try "SELECT COUNT(*) FROM taxi, neighborhoods", \datasets, \quit`)

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		fmt.Print("urbane> ")
		if !sc.Scan() {
			fmt.Println()
			return
		}
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
			continue
		case line == `\quit`, line == `\q`, line == "exit":
			return
		case line == `\datasets`:
			pts := f.PointSetNames()
			layers := f.RegionSetNames()
			sort.Strings(pts)
			sort.Strings(layers)
			fmt.Printf("point sets: %s\nlayers:     %s\n",
				strings.Join(pts, ", "), strings.Join(layers, ", "))
			continue
		case strings.HasPrefix(line, `\`):
			fmt.Println(`commands: \datasets \quit`)
			continue
		}
		runStatement(f, line, *top)
	}
}

func runStatement(f *urbane.Framework, stmt string, top int) {
	exec, err := f.Query(stmt)
	if err != nil {
		fmt.Printf("error: %v\n", err)
		return
	}
	rs := exec.Plan.Request.Regions
	type row struct {
		name string
		v    float64
	}
	rows := make([]row, len(exec.Result.Stats))
	for k, reg := range rs.Regions {
		rows[k] = row{reg.Name, exec.Result.Value(k, exec.Plan.Request.Agg)}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].v > rows[j].v })
	fmt.Printf("-- %s via %s in %v (%s)\n",
		exec.Plan.Request.Agg, exec.Result.Algorithm,
		exec.Elapsed.Round(time.Microsecond), exec.Plan.Reason)
	n := top
	if n > len(rows) {
		n = len(rows)
	}
	for i := 0; i < n; i++ {
		fmt.Printf("  %-28s %12.4g\n", rows[i].name, rows[i].v)
	}
	if len(rows) > n {
		fmt.Printf("  ... %d more regions\n", len(rows)-n)
	}
}

// loadDir registers every *.csv as a point set and every *.geojson as a
// region layer, named by file basename.
func loadDir(f *urbane.Framework, dir string) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	loaded := 0
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		path := filepath.Join(dir, e.Name())
		name := strings.TrimSuffix(e.Name(), filepath.Ext(e.Name()))
		switch filepath.Ext(e.Name()) {
		case ".csv":
			fh, err := os.Open(path)
			if err != nil {
				return err
			}
			ps, err := data.ReadCSV(fh, name)
			fh.Close()
			if err != nil {
				return fmt.Errorf("loading %s: %w", path, err)
			}
			ps.SortByTime()
			if err := f.AddPointSet(ps); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "loaded %s (%d points)\n", path, ps.Len())
			loaded++
		case ".geojson":
			fh, err := os.Open(path)
			if err != nil {
				return err
			}
			rs, err := data.ReadGeoJSONAuto(fh, name)
			fh.Close()
			if err != nil {
				return fmt.Errorf("loading %s: %w", path, err)
			}
			if err := f.AddRegionSet(rs); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "loaded %s (%d regions)\n", path, rs.Len())
			loaded++
		}
	}
	if loaded == 0 {
		return fmt.Errorf("no .csv or .geojson files in %s", dir)
	}
	return nil
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
