package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"runtime"

	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/cube"
	"repro/internal/data"
	"repro/internal/fsum"
	"repro/internal/geoblocks"
	"repro/internal/geom"
	"repro/internal/gpu"
	"repro/internal/index"
	"repro/internal/segment"
	"repro/internal/shard"
	"repro/internal/tcache"
	"repro/internal/urbane"
	"repro/internal/workload"
)

// subsample keeps every k-th point to hit n while preserving the spatial and
// temporal distribution (and time order) of the full set.
func subsample(ps *data.PointSet, n int) *data.PointSet {
	if n >= ps.Len() {
		return ps
	}
	idx := make([]int, 0, n)
	step := float64(ps.Len()) / float64(n)
	for i := 0; i < n; i++ {
		idx = append(idx, int(float64(i)*step))
	}
	out := ps.Select(idx)
	out.Name = ps.Name
	return out
}

// absCountErr sums per-region |count - want|.
func absCountErr(got, want *core.Result) int64 {
	var e int64
	for k := range got.Stats {
		d := got.Stats[k].Count - want.Stats[k].Count
		if d < 0 {
			d = -d
		}
		e += d
	}
	return e
}

// relErr is total absolute error over total true count.
func relErr(got, want *core.Result) float64 {
	t := want.TotalCount()
	if t == 0 {
		return 0
	}
	return float64(absCountErr(got, want)) / float64(t)
}

// ---------------------------------------------------------------- E1

// runE1 reproduces the paper's Figure 1 interaction: the map view showing
// taxi pickups in January 2009 aggregated over NYC's neighborhoods, then
// the four weekly time-slider refinements a demo visitor performs.
func runE1(scale float64) {
	n := scaled(1_000_000, scale, 50_000)
	fmt.Printf("workload: %d taxi points, %d neighborhoods\n", n, workload.NeighborhoodCount)
	scene := workload.NYC(n, 2009)

	f := urbane.New(core.NewRasterJoin(core.WithResolution(1024)))
	must(f.AddPointSet(scene.Taxi))
	must(f.AddRegionSet(scene.Neighborhoods))

	t := newTable("interaction", "latency", "algorithm", "total pickups")
	windows := []struct {
		name string
		tf   *core.TimeFilter
	}{{"January 2009 (full month)", workload.Jan2009()},
		{"week 1", workload.JanWeek(0)}, {"week 2", workload.JanWeek(1)},
		{"week 3", workload.JanWeek(2)}, {"week 4", workload.JanWeek(3)}}
	var last *urbane.Choropleth
	for _, w := range windows {
		var ch *urbane.Choropleth
		lat := timeMedian(3, func() {
			var err error
			ch, err = f.MapView(urbane.MapViewRequest{
				Dataset: "taxi", Layer: "neighborhoods",
				Agg: core.Count, Time: w.tf,
			})
			must(err)
		})
		var total fsum.Kahan
		for _, v := range ch.Values {
			total.Add(v.Value)
		}
		t.row(w.name, lat, ch.Algorithm, int64(total.Sum()))
		last = ch
	}
	t.flush()

	// The choropleth itself: top neighborhoods of the final view.
	vals := append([]urbane.RegionValue(nil), last.Values...)
	sort.Slice(vals, func(i, j int) bool { return vals[i].Value > vals[j].Value })
	fmt.Println("\nbusiest neighborhoods (week 4):")
	t2 := newTable("rank", "neighborhood", "pickups")
	for i := 0; i < 5 && i < len(vals); i++ {
		t2.row(i+1, vals[i].Name, int64(vals[i].Value))
	}
	t2.flush()
}

// ---------------------------------------------------------------- E2

// runE2 illustrates the raster pipeline itself (the paper's Raster Join
// figure): how approximation error falls with canvas resolution while the
// accurate hybrid stays exact at every resolution.
func runE2(scale float64) {
	n := scaled(100_000, scale, 20_000)
	scene := workload.NYC(n, 11)
	regions := data.VoronoiRegions("nbhd16", scene.Bounds, 16, 12,
		data.VoronoiOptions{JitterFrac: 0.12})
	req := core.Request{Points: scene.Taxi, Regions: regions, Agg: core.Count}
	exact, err := (&index.BruteForce{}).Join(req)
	must(err)
	fmt.Printf("workload: %d points, %d polygons, exact total %d\n",
		n, regions.Len(), exact.TotalCount())

	t := newTable("canvas", "pixel (m)", "approx rel err", "accurate rel err", "approx latency", "accurate latency")
	for _, res := range []int{64, 128, 256, 512, 1024, 2048} {
		apx := core.NewRasterJoin(core.WithResolution(res))
		acc := core.NewRasterJoin(core.WithResolution(res), core.WithMode(core.Accurate))
		var ra, rb *core.Result
		la := timeMedian(3, func() { ra, err = apx.Join(req); must(err) })
		lb := timeMedian(3, func() { rb, err = acc.Join(req); must(err) })
		t.row(fmt.Sprintf("%dx%d", ra.CanvasW, ra.CanvasH), ra.PixelSize,
			relErr(ra, exact), relErr(rb, exact), la, lb)
	}
	t.flush()
}

// ---------------------------------------------------------------- E3

// runE3 is the headline performance figure: query latency as the point
// count grows, raster join against the exact index joins. The paper's
// claim: raster join stays interactive (sub-second) and widens its lead as
// data grows.
func runE3(scale float64) {
	maxN := scaled(4_000_000, scale, 250_000)
	scene := workload.NYC(maxN, 2009)
	regions := scene.Neighborhoods
	fmt.Printf("workload: up to %d points, %d neighborhoods, COUNT + week filter\n",
		maxN, regions.Len())

	grid := &index.GridJoin{}
	rtree := &index.RTreeJoin{}
	apx := core.NewRasterJoin(core.WithResolution(1024))
	acc := core.NewRasterJoin(core.WithResolution(1024), core.WithMode(core.Accurate))

	// Warm up allocators and caches so the first row isn't penalized.
	warm := core.Request{Points: subsample(scene.Taxi, maxN/8), Regions: regions,
		Agg: core.Count, Time: workload.JanWeek(1)}
	_, err := apx.Join(warm)
	must(err)
	_, err = acc.Join(warm)
	must(err)

	t := newTable("points", "raster 1024px", "raster accurate", "index grid", "index rtree")
	for n := maxN / 8; n <= maxN; n *= 2 {
		pts := subsample(scene.Taxi, n)
		req := core.Request{Points: pts, Regions: regions, Agg: core.Count,
			Time: workload.JanWeek(1)}
		grid.Prepare(pts) // index build is preprocessing, not query time
		rtree.Prepare(regions)
		// Settle the heap so the subsample/index allocations don't tax the
		// first timed runs.
		runtime.GC()
		la := timeMedian(3, func() { _, err := apx.Join(req); must(err) })
		lb := timeMedian(3, func() { _, err := acc.Join(req); must(err) })
		lc := timeMedian(3, func() { _, err := grid.Join(req); must(err) })
		ld := timeMedian(3, func() { _, err := rtree.Join(req); must(err) })
		t.row(n, la, lb, lc, ld)
	}
	t.flush()
}

// ---------------------------------------------------------------- E4

// runE4 sweeps the polygon axis: more (and smaller) regions at a fixed
// point count.
func runE4(scale float64) {
	n := scaled(2_000_000, scale, 200_000)
	scene := workload.NYC(n, 2009)
	fmt.Printf("workload: %d points, COUNT, region sweep\n", n)

	grid := &index.GridJoin{}
	grid.Prepare(scene.Taxi)
	rtree := &index.RTreeJoin{}
	apx := core.NewRasterJoin(core.WithResolution(1024))

	// Warm up allocators and caches so the first row isn't penalized.
	_, err := apx.Join(core.Request{Points: scene.Taxi,
		Regions: scene.Neighborhoods, Agg: core.Count})
	must(err)

	t := newTable("polygons", "total vertices", "raster 1024px", "index grid", "index rtree")
	for _, nr := range []int{64, 260, 1024, 4096} {
		regions := data.VoronoiRegions("sweep", scene.Bounds, nr, int64(nr),
			data.VoronoiOptions{JitterFrac: 0.10})
		req := core.Request{Points: scene.Taxi, Regions: regions, Agg: core.Count}
		rtree.Prepare(regions)
		la := timeMedian(3, func() { _, err := apx.Join(req); must(err) })
		lb := timeMedian(3, func() { _, err := grid.Join(req); must(err) })
		lc := timeMedian(3, func() { _, err := rtree.Join(req); must(err) })
		t.row(regions.Len(), regions.VertexCount(), la, lb, lc)
	}
	t.flush()
}

// ---------------------------------------------------------------- E5

// runE5 is the bounded raster join accuracy table: measured error against
// the requested ε, plus the canvas/tiling cost of tightening the bound.
func runE5(scale float64) {
	n := scaled(2_000_000, scale, 200_000)
	scene := workload.NYC(n, 2009)
	regions := scene.Neighborhoods
	req := core.Request{Points: scene.Taxi, Regions: regions, Agg: core.Count}
	exact, err := (&index.BruteForce{}).Join(req)
	must(err)
	fmt.Printf("workload: %d points, %d neighborhoods; ε is ground meters\n",
		n, regions.Len())

	t := newTable("epsilon (m)", "canvas", "tiles", "rel err", "latency")
	for _, eps := range []float64{512, 256, 128, 64, 32, 16} {
		rj := core.NewRasterJoin(core.WithEpsilon(workload.GroundMeters(eps)))
		var res *core.Result
		lat := timeMedian(3, func() { res, err = rj.Join(req); must(err) })
		t.row(eps, fmt.Sprintf("%dx%d", res.CanvasW, res.CanvasH), res.Tiles,
			relErr(res, exact), lat)
	}
	t.flush()
}

// ---------------------------------------------------------------- E6

// runE6 stages the paper's core argument: pre-aggregation is fast on its
// canned queries but cannot serve ad-hoc constraints, while raster join
// serves everything at interactive speed.
func runE6(scale float64) {
	n := scaled(2_000_000, scale, 200_000)
	scene := workload.NYC(n, 2009)
	regions := scene.Neighborhoods

	start := time.Now()
	cb, err := cube.Build(scene.Taxi, cube.Config{
		Regions: regions, TimeBin: 86400, Attrs: []string{"fare"}})
	must(err)
	buildTime := time.Since(start)
	fmt.Printf("workload: %d points; cube: %d cells, built in %v\n",
		n, cb.MemoryCells(), buildTime.Round(time.Millisecond))

	rj := core.NewRasterJoin(core.WithResolution(1024))

	canned := core.Request{Points: scene.Taxi, Regions: regions, Agg: core.Count,
		Time: &core.TimeFilter{Start: cb.BinStart(0), End: cb.BinStart(7)}}
	adhocFilter := core.Request{Points: scene.Taxi, Regions: regions, Agg: core.Count,
		Filters: []core.Filter{{Attr: "fare", Min: 20, Max: 200}}}
	adhocPoly := core.Request{Points: scene.Taxi, Regions: workload.AdHocPolygon(7),
		Agg: core.Count, Filters: []core.Filter{{Attr: "fare", Min: 20, Max: 200}}}

	t := newTable("query", "cube", "raster join")
	row := func(name string, req core.Request) {
		var cubeCell string
		if err := cb.CanServe(req); err != nil {
			if errors.Is(err, cube.ErrUnsupported) {
				cubeCell = "UNSUPPORTED"
			} else {
				cubeCell = "error"
			}
		} else {
			cubeCell = timeMedian(5, func() { _, err := cb.Join(req); must(err) }).String()
		}
		rl := timeMedian(3, func() { _, err := rj.Join(req); must(err) })
		t.row(name, cubeCell, rl)
	}
	row("canned: count, aligned week", canned)
	row("ad-hoc: fare filter", adhocFilter)
	row("ad-hoc: user polygon + filter", adhocPoly)
	t.flush()
}

// ---------------------------------------------------------------- E7

// runE7 measures the demo's multi-resolution interactivity: the same query
// at neighborhood, tract, and grid resolution.
func runE7(scale float64) {
	n := scaled(2_000_000, scale, 200_000)
	scene := workload.NYC(n, 2009)
	fmt.Printf("workload: %d points, COUNT + week filter, resolution sweep\n", n)

	apx := core.NewRasterJoin(core.WithResolution(1024))
	grid := &index.GridJoin{}
	grid.Prepare(scene.Taxi)

	t := newTable("layer", "regions", "raster 1024px", "index grid", "interactive (<500ms)")
	for _, rs := range []*data.RegionSet{scene.Neighborhoods, scene.Tracts, scene.Grid} {
		req := core.Request{Points: scene.Taxi, Regions: rs, Agg: core.Count,
			Time: workload.JanWeek(2)}
		la := timeMedian(3, func() { _, err := apx.Join(req); must(err) })
		lb := timeMedian(3, func() { _, err := grid.Join(req); must(err) })
		t.row(rs.Name, rs.Len(), la, lb, la < 500*time.Millisecond)
	}
	t.flush()
}

// ---------------------------------------------------------------- E8

// runE8 drives the data exploration view: three data sets compared over
// the month at weekly granularity for a handful of neighborhoods.
func runE8(scale float64) {
	n := scaled(1_000_000, scale, 100_000)
	scene := workload.NYC(n, 2009)
	c311 := data.Generate(data.NYC311Config(n/4, 2009, time.January, 31))
	photos := data.Generate(data.NYCPhotosConfig(n/8, 2009, time.January, 32))

	f := urbane.New(core.NewRasterJoin(core.WithResolution(1024)))
	must(f.AddPointSet(scene.Taxi))
	must(f.AddPointSet(c311))
	must(f.AddPointSet(photos))
	must(f.AddRegionSet(scene.Neighborhoods))

	jan := workload.Jan2009()
	var ex *urbane.Exploration
	lat := timeMedian(1, func() {
		var err error
		ex, err = f.Explore(urbane.ExplorationRequest{
			Datasets:  []string{"taxi", "311", "photos"},
			Layer:     "neighborhoods",
			Agg:       core.Count,
			RegionIDs: []int{0, 1, 2},
			Start:     jan.Start, End: jan.End, Bins: 12,
		})
		must(err)
	})
	queries := 3 * 12 // datasets x bins
	fmt.Printf("workload: %d+%d+%d points, 3 regions, 12 bins\n",
		scene.Taxi.Len(), c311.Len(), photos.Len())
	t := newTable("metric", "value")
	t.row("series computed", len(ex.Series))
	t.row("spatial aggregations", queries)
	t.row("total view latency", lat)
	t.row("per-aggregation", lat/time.Duration(queries))
	t.flush()

	// Ablation: the fragment-cache series join (polygon pass paid once per
	// data set) against naive per-bin joins (polygon pass paid per bin).
	rj := core.NewRasterJoin(core.WithResolution(1024))
	req := core.Request{Points: scene.Taxi, Regions: scene.Neighborhoods, Agg: core.Count}
	seriesLat := timeMedian(3, func() {
		_, err := rj.SeriesJoin(req, jan.Start, jan.End, 12)
		must(err)
	})
	width := (jan.End - jan.Start) / 12
	perBinLat := timeMedian(3, func() {
		for b := 0; b < 12; b++ {
			r := req
			r.Time = &core.TimeFilter{Start: jan.Start + int64(b)*width,
				End: jan.Start + int64(b+1)*width}
			_, err := rj.Join(r)
			must(err)
		}
	})
	fmt.Println("\nablation: cached polygon pass (12 bins, taxi x neighborhoods)")
	t2 := newTable("strategy", "latency", "speedup")
	t2.row("per-bin joins", perBinLat, 1.0)
	t2.row("series join (fragment cache)", seriesLat,
		float64(perBinLat)/float64(seriesLat))
	t2.flush()
}

// ---------------------------------------------------------------- E9

// runE9 is the hybrid ablation: what exactness costs. Approximate vs
// accurate raster join vs the exact index join, same query.
func runE9(scale float64) {
	n := scaled(2_000_000, scale, 200_000)
	scene := workload.NYC(n, 2009)
	regions := scene.Neighborhoods
	req := core.Request{Points: scene.Taxi, Regions: regions, Agg: core.Count}
	exact, err := (&index.BruteForce{}).Join(req)
	must(err)
	fmt.Printf("workload: %d points, %d neighborhoods\n", n, regions.Len())

	grid := &index.GridJoin{}
	grid.Prepare(scene.Taxi)

	t := newTable("algorithm", "latency", "rel err", "exact")
	for _, j := range []core.Joiner{
		core.NewRasterJoin(core.WithResolution(1024)),
		core.NewRasterJoin(core.WithResolution(1024), core.WithMode(core.Accurate)),
		grid,
	} {
		var res *core.Result
		lat := timeMedian(3, func() { res, err = j.Join(req); must(err) })
		e := relErr(res, exact)
		t.row(j.Name(), lat, e, e == 0)
	}
	t.flush()

	// The knob behind the cost: how much of the canvas is boundary.
	apx := core.NewRasterJoin(core.WithResolution(1024))
	res, err := apx.Join(req)
	must(err)
	fmt.Printf("\ncanvas %dx%d, pixel %.0fm: exactness costs only the boundary-pixel work\n",
		res.CanvasW, res.CanvasH, res.PixelSize)
}

// ---------------------------------------------------------------- E10

// runE10 compares the two raster join formulations: points-first (point
// textures probed by polygon draws) versus polygons-first (a polygon-ID
// texture read by the point stream), across region counts.
func runE10(scale float64) {
	n := scaled(2_000_000, scale, 200_000)
	scene := workload.NYC(n, 2009)
	fmt.Printf("workload: %d points, COUNT, strategy x regions\n", n)

	// Warm up.
	warm := core.NewRasterJoin(core.WithResolution(1024))
	_, err := warm.Join(core.Request{Points: scene.Taxi,
		Regions: scene.Neighborhoods, Agg: core.Count})
	must(err)

	t := newTable("polygons", "points-first", "polygons-first", "pf accurate")
	for _, nr := range []int{64, 260, 1024, 4096} {
		regions := data.VoronoiRegions("sweep", scene.Bounds, nr, int64(nr),
			data.VoronoiOptions{JitterFrac: 0.10})
		req := core.Request{Points: scene.Taxi, Regions: regions, Agg: core.Count}
		ptf := core.NewRasterJoin(core.WithResolution(1024))
		pf := core.NewRasterJoin(core.WithResolution(1024),
			core.WithStrategy(core.PolygonsFirst))
		pfa := core.NewRasterJoin(core.WithResolution(1024),
			core.WithStrategy(core.PolygonsFirst), core.WithMode(core.Accurate))
		la := timeMedian(3, func() { _, err := ptf.Join(req); must(err) })
		lb := timeMedian(3, func() { _, err := pf.Join(req); must(err) })
		lc := timeMedian(3, func() { _, err := pfa.Join(req); must(err) })
		t.row(regions.Len(), la, lb, lc)
	}
	t.flush()
}

// ---------------------------------------------------------------- E11

// runE11 measures the OD flow view (Urbane's taxi-flow visualization): the
// raster flow join against a geometric R-tree baseline resolving both trip
// ends exactly.
func runE11(scale float64) {
	n := scaled(1_000_000, scale, 100_000)
	scene := workload.NYC(n, 2009)
	regions := scene.Neighborhoods
	req := core.Request{Points: scene.Taxi, Regions: regions, Agg: core.Count}
	fmt.Printf("workload: %d trips, %d neighborhoods\n", n, regions.Len())

	rj := core.NewRasterJoin(core.WithResolution(1024))
	var flow *core.FlowResult
	var err error
	rasterLat := timeMedian(3, func() {
		flow, err = rj.FlowJoin(req, data.DropoffXAttr, data.DropoffYAttr)
		must(err)
	})

	// Geometric baseline: R-tree over region boxes, exact PIP per end.
	rtree := &index.RTreeJoin{}
	rtree.Prepare(regions)
	dx := scene.Taxi.Attr(data.DropoffXAttr)
	dy := scene.Taxi.Attr(data.DropoffYAttr)
	geoLat := timeMedian(1, func() {
		counts := map[int64]int64{}
		tr := indexRTree(regions)
		nr := int64(regions.Len())
		for i := 0; i < scene.Taxi.Len(); i++ {
			o := locateExact(tr, regions, scene.Taxi.X[i], scene.Taxi.Y[i])
			if o < 0 {
				continue
			}
			d := locateExact(tr, regions, dx[i], dy[i])
			if d < 0 {
				continue
			}
			counts[int64(o)*nr+int64(d)]++
		}
	})

	t := newTable("algorithm", "latency", "resolved flows", "dropped")
	t.row("raster flow join 1024px", rasterLat, flow.Total(), flow.Dropped)
	t.row("geometric (rtree + exact PIP)", geoLat, "-", "-")
	t.flush()

	fmt.Println("\ntop flows:")
	t2 := newTable("from", "to", "trips")
	for _, e := range flow.Top(5) {
		t2.row(regions.Regions[e.From].Name, regions.Regions[e.To].Name, e.Count)
	}
	t2.flush()
}

func indexRTree(rs *data.RegionSet) *index.RTree {
	boxes := make([]geom.BBox, rs.Len())
	for i, r := range rs.Regions {
		boxes[i] = r.Poly.BBox()
	}
	return index.BuildRTree(boxes)
}

func locateExact(tr *index.RTree, rs *data.RegionSet, x, y float64) int32 {
	p := geom.Point{X: x, Y: y}
	found := int32(-1)
	tr.SearchPoint(p, func(id int32) {
		if found < 0 && rs.Regions[id].Poly.Contains(p) {
			found = id
		}
	})
	return found
}

// ---------------------------------------------------------------- E12

// runE12 sweeps filter selectivity: the intro's argument is that ad-hoc
// filterConditions break pre-aggregation entirely, while raster join
// evaluates them inline at essentially constant cost — the filter is one
// predicate in the point pass, whatever fraction of the data it keeps.
func runE12(scale float64) {
	n := scaled(2_000_000, scale, 200_000)
	scene := workload.NYC(n, 2009)
	regions := scene.Neighborhoods
	fmt.Printf("workload: %d points, %d neighborhoods, COUNT with fare filter\n",
		n, regions.Len())

	rj := core.NewRasterJoin(core.WithResolution(1024))
	grid := &index.GridJoin{}
	grid.Prepare(scene.Taxi)
	// Warm up.
	_, err := rj.Join(core.Request{Points: scene.Taxi, Regions: regions, Agg: core.Count})
	must(err)

	// Fare thresholds spanning selectivities from ~all to ~none.
	t := newTable("filter", "selectivity", "raster 1024px", "index grid", "cube")
	for _, minFare := range []float64{0, 10, 20, 40, 80} {
		req := core.Request{Points: scene.Taxi, Regions: regions, Agg: core.Count,
			Filters: []core.Filter{{Attr: "fare", Min: minFare, Max: 1e18}}}
		var res *core.Result
		la := timeMedian(3, func() { res, err = rj.Join(req); must(err) })
		lb := timeMedian(3, func() { _, err := grid.Join(req); must(err) })
		sel := float64(res.TotalCount()) / float64(n)
		t.row(fmt.Sprintf("fare >= %g", minFare), sel, la, lb, "UNSUPPORTED")
	}
	t.flush()
}

// ---------------------------------------------------------------- E13

// runE13 ablates polygon level-of-detail: Urbane swaps in simplified region
// geometry at low zooms. Simplification sheds boundary edges, which is
// where the accurate join spends its exact-test budget; the price is a
// bounded geometric error against the full-detail answer.
func runE13(scale float64) {
	n := scaled(2_000_000, scale, 200_000)
	scene := workload.NYC(n, 2009)
	full := scene.Neighborhoods
	req := core.Request{Points: scene.Taxi, Regions: full, Agg: core.Count}
	acc := core.NewRasterJoin(core.WithResolution(1024), core.WithMode(core.Accurate))
	exact, err := acc.Join(req) // full-detail exact reference (also warms up)
	must(err)
	fmt.Printf("workload: %d points, %d neighborhoods (%d vertices), accurate join\n",
		n, full.Len(), full.VertexCount())

	t := newTable("tolerance (m)", "vertices", "latency", "rel err vs full detail")
	for _, tol := range []float64{0, 25, 100, 400} {
		layer := full
		if tol > 0 {
			layer = data.SimplifyRegions(full, tol)
		}
		lreq := core.Request{Points: scene.Taxi, Regions: layer, Agg: core.Count}
		var res *core.Result
		lat := timeMedian(3, func() { res, err = acc.Join(lreq); must(err) })
		t.row(tol, layer.VertexCount(), lat, relErr(res, exact))
	}
	t.flush()
}

// ---------------------------------------------------------------- E16

// pointpassJSON is the machine-readable mirror of E16/E17, written to
// BENCH_pointpass.json so the perf trajectory is diffable across PRs.
// Running either experiment rewrites its section and preserves the other.
type pointpassJSON struct {
	Cores     int              `json:"cores"`
	Scaling   []scalingRowJSON `json:"scaling,omitempty"`
	SpanCache *spanCacheJSON   `json:"span_cache,omitempty"`
}

type scalingRowJSON struct {
	Workers      int     `json:"workers"`
	NsPerOp      int64   `json:"ns_per_op"`
	PointsPerSec float64 `json:"points_per_sec"`
	Speedup      float64 `json:"speedup_vs_sequential"`
}

type spanCacheJSON struct {
	Regions     int     `json:"regions"`
	ColdNsPerOp int64   `json:"cold_ns_per_op"`
	WarmNsPerOp int64   `json:"warm_ns_per_op"`
	DisabledNs  int64   `json:"disabled_ns_per_op"`
	WarmSpeedup float64 `json:"warm_speedup_vs_disabled"`
	CacheHits   uint64  `json:"cache_hits"`
	CacheMisses uint64  `json:"cache_misses"`
}

const pointpassFile = "BENCH_pointpass.json"

// mergeBenchJSON read-modify-writes BENCH_pointpass.json so E16 and E17
// can run independently without clobbering each other's section.
func mergeBenchJSON(update func(*pointpassJSON)) {
	var rep pointpassJSON
	if raw, err := os.ReadFile(pointpassFile); err == nil {
		_ = json.Unmarshal(raw, &rep) // a stale/corrupt file is overwritten
	}
	rep.Cores = runtime.NumCPU()
	update(&rep)
	out, err := json.MarshalIndent(&rep, "", "  ")
	must(err)
	must(os.WriteFile(pointpassFile, append(out, '\n'), 0o644))
	fmt.Printf("\nwrote %s\n", pointpassFile)
}

// runE16 measures the parallel sharded point pass: the E1 workload joined
// with the accurate kernel while the point pass fans out over 1/2/4/8
// goroutines. Results are bit-identical at every worker count (the stripe
// replay preserves per-pixel fragment order), so this is purely a
// throughput experiment; speedup is bounded by available cores.
func runE16(scale float64) {
	n := scaled(1_000_000, scale, 100_000)
	scene := workload.NYC(n, 2009)
	regions := scene.Neighborhoods
	req := core.Request{Points: scene.Taxi, Regions: regions, Agg: core.Count,
		Time: workload.JanWeek(1)}
	fmt.Printf("workload: %d points, %d neighborhoods, accurate join, %d cores\n",
		n, regions.Len(), runtime.NumCPU())

	var rows []scalingRowJSON
	var seqNs int64
	t := newTable("workers", "latency", "points/sec", "speedup vs workers=1")
	for _, workers := range []int{1, 2, 4, 8} {
		rj := core.NewRasterJoin(core.WithResolution(1024), core.WithMode(core.Accurate),
			core.WithPointWorkers(workers))
		_, err := rj.Join(req) // warm pools
		must(err)
		lat := timeMedian(7, func() { _, err := rj.Join(req); must(err) })
		if workers == 1 {
			seqNs = lat.Nanoseconds()
		}
		speedup := float64(seqNs) / float64(lat.Nanoseconds())
		pps := float64(n) / lat.Seconds()
		t.row(workers, lat, pps, speedup)
		rows = append(rows, scalingRowJSON{Workers: workers, NsPerOp: lat.Nanoseconds(),
			PointsPerSec: pps, Speedup: speedup})
	}
	t.flush()
	mergeBenchJSON(func(rep *pointpassJSON) { rep.Scaling = rows })
}

// ---------------------------------------------------------------- E17

// runE17 measures the cross-query region span cache on a polygon-heavy
// workload: the 2048-tract layer with a small point load, so pass 2 and
// the outline pass (the scan-conversion consumers) dominate. Cold pays
// compilation once; warm queries replay the compiled spans; disabled
// re-rasterizes every polygon per join. All three produce bit-identical
// results.
func runE17(scale float64) {
	n := scaled(50_000, scale, 20_000)
	scene := workload.NYC(n, 2009)
	tracts := scene.Tracts
	req := core.Request{Points: scene.Taxi, Regions: tracts, Agg: core.Count}
	fmt.Printf("workload: %d points, %d tracts, accurate join\n", n, tracts.Len())

	// Disabled: every join pays full scan conversion.
	devOff := gpu.New(gpu.WithSpanCacheBytes(0))
	off := core.NewRasterJoin(core.WithDevice(devOff), core.WithResolution(1024),
		core.WithMode(core.Accurate))
	_, err := off.Join(req) // warm pools
	must(err)
	offLat := timeMedian(3, func() { _, err := off.Join(req); must(err) })

	// Enabled: the first join compiles and caches (cold), repeats replay.
	devOn := gpu.New()
	on := core.NewRasterJoin(core.WithDevice(devOn), core.WithResolution(1024),
		core.WithMode(core.Accurate))
	coldLat := timeMedian(1, func() { _, err := on.Join(req); must(err) })
	warmLat := timeMedian(3, func() { _, err := on.Join(req); must(err) })
	st := devOn.SpanCache().Stats()

	t := newTable("cache state", "latency", "speedup vs disabled")
	t.row("disabled", offLat, 1.0)
	t.row("cold (compile + join)", coldLat, float64(offLat)/float64(coldLat))
	t.row("warm (span replay)", warmLat, float64(offLat)/float64(warmLat))
	t.flush()
	fmt.Printf("\nspan cache: %d entries, %d bytes, %d hits / %d misses\n",
		st.Entries, st.Bytes, st.Hits, st.Misses)

	mergeBenchJSON(func(rep *pointpassJSON) {
		rep.SpanCache = &spanCacheJSON{
			Regions:     tracts.Len(),
			ColdNsPerOp: coldLat.Nanoseconds(),
			WarmNsPerOp: warmLat.Nanoseconds(),
			DisabledNs:  offLat.Nanoseconds(),
			WarmSpeedup: float64(offLat) / float64(warmLat),
			CacheHits:   st.Hits,
			CacheMisses: st.Misses,
		}
	})
}

// ---------------------------------------------------------------- E19

// geoblocksJSON is the machine-readable mirror of E19, written to
// BENCH_geoblocks.json.
type geoblocksJSON struct {
	Cores    int                `json:"cores"`
	Points   int                `json:"points"`
	MaxLevel int                `json:"max_level"`
	Rows     []geoblocksRowJSON `json:"selectivity_sweep"`
}

type geoblocksRowJSON struct {
	Shape        string  `json:"shape"`
	Vertices     int     `json:"vertices"`
	Count        int64   `json:"count"`
	RasterWarmNs int64   `json:"raster_warm_ns_per_op"`
	HybridWarmNs int64   `json:"hybrid_warm_ns_per_op"`
	HybridColdNs int64   `json:"hybrid_cold_ns_per_op"`
	WarmSpeedup  float64 `json:"warm_speedup_vs_raster"`
}

// runE19 sweeps arbitrary-polygon aggregation selectivity through the
// geoblocks hierarchy against the warm span-cache raster path. Three
// polygon scales: "tiny" (a few blocks), "city" (a district-sized star),
// "borough" (roughly half the city). The raster side gets every advantage
// we ship — accurate mode, warm pools, warm span cache — so the speedup
// column is hierarchy vs our best full-join path, not vs a strawman.
// Counts are asserted identical before any timing is reported.
func runE19(scale float64) {
	n := scaled(500_000, scale, 100_000)
	scene := workload.NYC(n, 2009)
	ps := scene.Taxi
	b := ps.Bounds()
	cx, cy := (b.MinX+b.MaxX)/2, (b.MinY+b.MaxY)/2
	span := b.MaxX - b.MinX
	if h := b.MaxY - b.MinY; h < span {
		span = h
	}
	shapes := []struct {
		name string
		pg   geom.Polygon
	}{
		{"tiny", geom.NewPolygon(geom.RegularRing(geom.Point{X: cx + span*0.1, Y: cy - span*0.05}, span*0.01, 8))},
		{"city", geom.NewPolygon(geom.StarRing(geom.Point{X: cx, Y: cy + span*0.08}, span*0.18, span*0.09, 9))},
		{"borough", geom.NewPolygon(geom.RegularRing(geom.Point{X: cx, Y: cy}, span*0.45, 20))},
	}

	const maxLevel = 8
	dev := gpu.New()
	raster := core.NewRasterJoin(core.WithDevice(dev), core.WithResolution(1024),
		core.WithMode(core.Accurate))
	eng := geoblocks.NewEngine(raster, maxLevel)
	fmt.Printf("workload: %d points, accurate 1024px raster vs geoblocks maxlevel=%d\n", n, maxLevel)

	rep := geoblocksJSON{Cores: runtime.NumCPU(), Points: n, MaxLevel: maxLevel}
	t := newTable("polygon", "count", "raster warm", "hybrid cold", "hybrid warm", "warm speedup")
	gen := uint64(1)
	for _, sh := range shapes {
		rs := &data.RegionSet{Name: "poly", Regions: []data.Region{{ID: 0, Name: sh.name, Poly: sh.pg}}}
		req := core.Request{Points: ps, Regions: rs, Agg: core.Sum, Attr: "fare"}

		want, err := raster.Join(req) // also warms pools + span cache
		must(err)
		rasterLat := timeMedian(5, func() { _, err := raster.Join(req); must(err) })

		// Cold: the store drops on a generation bump, so the first query
		// pays the full pyramid build.
		gen++
		eng.Store().SetGeneration(gen)
		var coldRes *core.Result
		coldLat := timeMedian(1, func() { r, err := eng.Join(req); must(err); coldRes = r })
		warmLat := timeMedian(5, func() { _, err := eng.Join(req); must(err) })

		if coldRes.Stats[0].Count != want.Stats[0].Count {
			panic(fmt.Sprintf("E19 %s: hybrid count %d != raster count %d",
				sh.name, coldRes.Stats[0].Count, want.Stats[0].Count))
		}
		speedup := float64(rasterLat) / float64(warmLat)
		t.row(sh.name, want.Stats[0].Count, rasterLat, coldLat, warmLat, speedup)
		rep.Rows = append(rep.Rows, geoblocksRowJSON{
			Shape: sh.name, Vertices: len(sh.pg.Outer), Count: want.Stats[0].Count,
			RasterWarmNs: rasterLat.Nanoseconds(), HybridWarmNs: warmLat.Nanoseconds(),
			HybridColdNs: coldLat.Nanoseconds(), WarmSpeedup: speedup,
		})
	}
	t.flush()

	out, err := json.MarshalIndent(&rep, "", "  ")
	must(err)
	must(os.WriteFile("BENCH_geoblocks.json", append(out, '\n'), 0o644))
	fmt.Printf("\nwrote BENCH_geoblocks.json\n")
}

// ---------------------------------------------------------------- E20

// segmentsJSON is the machine-readable mirror of E20, written to
// BENCH_segments.json.
type segmentsJSON struct {
	Cores     int               `json:"cores"`
	Points    int               `json:"points"`
	Blocks    int               `json:"blocks"`
	BlockSize int               `json:"block_size"`
	FileBytes int64             `json:"file_bytes"`
	RawBytes  int64             `json:"raw_bytes"`
	Rows      []segmentsRowJSON `json:"selectivity_sweep"`
}

type segmentsRowJSON struct {
	Selectivity   float64 `json:"selectivity"`
	Count         int64   `json:"count"`
	PruneNs       int64   `json:"prune_ns_per_op"`
	NoPruneNs     int64   `json:"noprune_ns_per_op"`
	InRAMNs       int64   `json:"inram_ns_per_op"`
	BlocksScanned int64   `json:"blocks_scanned_per_op"`
	BlocksPruned  int64   `json:"blocks_pruned_per_op"`
	Speedup       float64 `json:"speedup_vs_noprune"`
}

// runE20 sweeps filter selectivity over the columnar segment store: the
// same COUNT-by-neighborhood join answered from a segment file with
// zone-map block pruning on (default), with pruning disabled (every block
// decoded), and from the in-RAM point set. The filter lands on an
// ingest-ordered attribute (a monotone trip odometer — the common shape of
// ids, sequence numbers, and secondary timestamps in append-ordered data),
// so a predicate keeping fraction s of the points lets the per-block
// attribute zones eliminate ~(1-s) of the blocks before decoding; the
// speedup column is the decode work the zone maps save. Time filters do
// not exercise this path — on time-sorted segments they narrow the scan
// range by binary search before pruning is even consulted. Counts are
// asserted identical across all three paths before any timing is
// reported.
func runE20(scale float64) {
	n := scaled(2_000_000, scale, 200_000)
	scene := workload.NYC(n, 2009)
	ps := scene.Taxi
	regions := scene.Neighborhoods

	// The swept attribute: monotone in ingest order, 0..100.
	odo := make([]float64, ps.Len())
	for i := range odo {
		odo[i] = 100 * float64(i) / float64(ps.Len())
	}
	ps.Attrs = append(ps.Attrs, data.Column{Name: "odometer", Values: odo})

	dir, err := os.MkdirTemp("", "urbane-e20-")
	must(err)
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "taxi.useg")
	file, err := os.Create(path)
	must(err)
	must(segment.Write(file, ps))
	must(file.Close())
	st, err := segment.Open(path)
	must(err)
	defer st.Close()
	info, err := os.Stat(path)
	must(err)
	rawBytes := int64(ps.Len()) * int64(8+8+8+8*len(ps.Attrs))
	fmt.Printf("workload: %d points, %d neighborhoods; segment: %d blocks x %d, %.1f MiB on disk (%.1f MiB raw)\n",
		n, regions.Len(), st.NumBlocks(), st.BlockSize(),
		float64(info.Size())/(1<<20), float64(rawBytes)/(1<<20))

	prune := core.NewRasterJoin(core.WithResolution(1024))
	noprune := core.NewRasterJoin(core.WithResolution(1024), core.WithBlockPrune(false))

	// Warm pools, the span cache, and the decoded-block cache.
	warm := core.Request{Source: st, Regions: regions, Agg: core.Count}
	_, err = prune.Join(warm)
	must(err)
	_, err = noprune.Join(warm)
	must(err)

	rep := segmentsJSON{Cores: runtime.NumCPU(), Points: n,
		Blocks: st.NumBlocks(), BlockSize: st.BlockSize(),
		FileBytes: info.Size(), RawBytes: rawBytes}
	t := newTable("selectivity", "count", "blocks scanned", "blocks pruned",
		"segment pruned", "segment full-scan", "in-RAM", "speedup vs full-scan")
	for _, sel := range []float64{0.001, 0.01, 0.1, 0.5, 1.0} {
		width := 100 * sel
		lo := (100 - width) / 2 // centered, so both file ends prune
		filters := []core.Filter{{Attr: "odometer", Min: lo, Max: lo + width}}
		segReq := core.Request{Source: st, Regions: regions, Agg: core.Count, Filters: filters}
		ramReq := core.Request{Points: ps, Regions: regions, Agg: core.Count, Filters: filters}

		// One bracketed join for the per-query pruning counters, then the
		// timed repetitions.
		s0, p0 := core.ScanStats()
		pres, err := prune.Join(segReq)
		must(err)
		s1, p1 := core.ScanStats()
		scanned, pruned := s1-s0, p1-p0

		pruneLat := timeMedian(5, func() { _, err := prune.Join(segReq); must(err) })
		var nres, rres *core.Result
		nopruneLat := timeMedian(5, func() { nres, err = noprune.Join(segReq); must(err) })
		ramLat := timeMedian(5, func() { rres, err = prune.Join(ramReq); must(err) })

		if pres.TotalCount() != nres.TotalCount() || pres.TotalCount() != rres.TotalCount() {
			panic(fmt.Sprintf("E20 sel=%g: counts diverge: pruned %d, full-scan %d, in-RAM %d",
				sel, pres.TotalCount(), nres.TotalCount(), rres.TotalCount()))
		}
		speedup := float64(nopruneLat) / float64(pruneLat)
		t.row(sel, pres.TotalCount(), scanned, pruned, pruneLat, nopruneLat, ramLat, speedup)
		rep.Rows = append(rep.Rows, segmentsRowJSON{
			Selectivity: sel, Count: pres.TotalCount(),
			PruneNs: pruneLat.Nanoseconds(), NoPruneNs: nopruneLat.Nanoseconds(),
			InRAMNs: ramLat.Nanoseconds(), BlocksScanned: scanned, BlocksPruned: pruned,
			Speedup: speedup,
		})
	}
	t.flush()

	out, err := json.MarshalIndent(&rep, "", "  ")
	must(err)
	must(os.WriteFile("BENCH_segments.json", append(out, '\n'), 0o644))
	fmt.Printf("\nwrote BENCH_segments.json\n")
}

// ---------------------------------------------------------------- E21

// incrementalJSON is the machine-readable mirror of E21, written to
// BENCH_incremental.json.
type incrementalJSON struct {
	Cores   int                  `json:"cores"`
	Points  int                  `json:"points"`
	GranSec int64                `json:"gran_sec"`
	Rows    []incrementalRowJSON `json:"window_sweep"`
}

type incrementalRowJSON struct {
	Slabs        int     `json:"slabs"`
	Count        int64   `json:"count"`
	WarmSlideNs  int64   `json:"warm_slide_ns_per_op"`
	ColdFoldNs   int64   `json:"cold_fold_ns_per_op"`
	SlabsReused  uint64  `json:"slabs_reused"`
	SpeedupSlide float64 `json:"slide_speedup_vs_cold"`
}

// runE21 measures incremental temporal view maintenance: the time-slider's
// one-slab slide (window advances one slab; W-1 cached partials fold with
// 1 recomputed slab) against the cold fold a whole-window invalidation
// would force (every slab recomputed through the raster join). Window
// widths 4, 8, and 16 slabs at 6h granularity over the Jan-2009 month.
// Counts are asserted identical against the monolithic raster join before
// any timing is reported — the fold is an optimization, never an
// approximation.
func runE21(scale float64) {
	n := scaled(1_000_000, scale, 200_000)
	scene := workload.NYC(n, 2009)
	ps := scene.Taxi
	regions := scene.Neighborhoods
	const gran = int64(6 * 3600)
	start0 := workload.Jan2009().Start // slab-aligned: midnight is a 6h boundary

	raster := core.NewRasterJoin(core.WithResolution(1024), core.WithMode(core.Accurate))
	base := core.Request{Points: ps, Regions: regions, Agg: core.Sum, Attr: "fare"}
	ctx := context.Background()
	fmt.Printf("workload: %d points, %d regions, %dh slabs; one-slab slide vs cold fold\n",
		n, regions.Len(), gran/3600)

	rep := incrementalJSON{Cores: runtime.NumCPU(), Points: n, GranSec: gran}
	t := newTable("window", "count", "warm slide", "cold fold", "slabs reused", "slide speedup")
	for _, w := range []int{4, 8, 16} {
		j := tcache.New(raster, gran, 0, 0)
		cursor := start0
		windowReq := func() core.Request {
			req := base
			req.Time = &core.TimeFilter{Start: cursor, End: cursor + int64(w)*gran}
			return req
		}
		if _, err := j.JoinContext(ctx, windowReq()); err != nil { // initial fill
			must(err)
		}
		cursor += gran // one untimed slide pages in pools before timing
		if _, err := j.JoinContext(ctx, windowReq()); err != nil {
			must(err)
		}
		var folded *core.Result
		warmLat := timeMedian(5, func() {
			cursor += gran // each op slides one slab: 1 recompute + w-1 reuses
			r, err := j.JoinContext(ctx, windowReq())
			must(err)
			folded = r
		})
		coldLat := timeMedian(3, func() {
			cold := tcache.New(raster, gran, 0, 0)
			_, err := cold.JoinContext(ctx, windowReq())
			must(err)
		})

		want, err := raster.JoinContext(ctx, windowReq())
		must(err)
		if folded.TotalCount() != want.TotalCount() {
			panic(fmt.Sprintf("E21 w=%d: fold count %d != raster count %d",
				w, folded.TotalCount(), want.TotalCount()))
		}
		speedup := float64(coldLat) / float64(warmLat)
		t.row(fmt.Sprintf("%d slabs", w), want.TotalCount(), warmLat, coldLat, j.SlabsReused(), speedup)
		rep.Rows = append(rep.Rows, incrementalRowJSON{
			Slabs: w, Count: want.TotalCount(),
			WarmSlideNs: warmLat.Nanoseconds(), ColdFoldNs: coldLat.Nanoseconds(),
			SlabsReused: j.SlabsReused(), SpeedupSlide: speedup,
		})
	}
	t.flush()

	out, err := json.MarshalIndent(&rep, "", "  ")
	must(err)
	must(os.WriteFile("BENCH_incremental.json", append(out, '\n'), 0o644))
	fmt.Printf("\nwrote BENCH_incremental.json\n")
}

type shardJSON struct {
	Cores  int            `json:"cores"`
	Points int            `json:"points"`
	Note   string         `json:"note"`
	Rows   []shardRowJSON `json:"shard_sweep"`
}

type shardRowJSON struct {
	Shards       int     `json:"shards"`
	Count        int64   `json:"count"`
	ShardedNs    int64   `json:"sharded_ns_per_op"`
	LocalNs      int64   `json:"local_ns_per_op"`
	BitIdentical bool    `json:"bit_identical"`
	Overhead     float64 `json:"overhead_vs_local"`
}

// runE22 sweeps the scatter-gather shard count and proves the headline
// property on the full NYC workload: the sharded result is bit-identical
// to the local path at every count, with the coordination overhead (or
// speedup, on multi-core hosts) measured against the unsharded join.
func runE22(scale float64) {
	n := scaled(1_000_000, scale, 200_000)
	scene := workload.NYC(n, 2009)
	ps := scene.Taxi
	regions := scene.Neighborhoods
	raster := core.NewRasterJoin(core.WithResolution(1024), core.WithMode(core.Accurate))
	req := core.Request{Points: ps, Regions: regions, Agg: core.Sum, Attr: "fare"}
	ctx := context.Background()

	cores := runtime.NumCPU()
	note := fmt.Sprintf("%d-core host: shard passes run goroutine-per-shard, so wall-clock "+
		"gains need real cores; on a 1-core box the sweep measures pure coordination overhead", cores)
	fmt.Printf("workload: %d points, %d regions; scatter-gather vs local raster join\n%s\n",
		n, regions.Len(), note)

	want, err := raster.JoinContext(ctx, req)
	must(err)
	localLat := timeMedian(3, func() {
		_, err := raster.JoinContext(ctx, req)
		must(err)
	})

	rep := shardJSON{Cores: cores, Points: n, Note: note}
	t := newTable("shards", "count", "sharded", "local", "bit-identical", "overhead")
	for _, ns := range []int{1, 2, 4, 8} {
		co := shard.New(raster, ns)
		var got *core.Result
		shardLat := timeMedian(3, func() {
			r, err := co.JoinContext(ctx, req)
			must(err)
			got = r
		})
		identical := len(got.Stats) == len(want.Stats)
		for k := range got.Stats {
			if !identical {
				break
			}
			identical = got.Stats[k].Count == want.Stats[k].Count &&
				math.Float64bits(got.Stats[k].Sum) == math.Float64bits(want.Stats[k].Sum) &&
				math.Float64bits(got.Stats[k].Min) == math.Float64bits(want.Stats[k].Min) &&
				math.Float64bits(got.Stats[k].Max) == math.Float64bits(want.Stats[k].Max)
		}
		if !identical {
			panic(fmt.Sprintf("E22 shards=%d: sharded result diverged from local path", ns))
		}
		overhead := float64(shardLat)/float64(localLat) - 1
		t.row(fmt.Sprintf("%d", ns), want.TotalCount(), shardLat, localLat, identical,
			fmt.Sprintf("%+.1f%%", 100*overhead))
		rep.Rows = append(rep.Rows, shardRowJSON{
			Shards: ns, Count: want.TotalCount(),
			ShardedNs: shardLat.Nanoseconds(), LocalNs: localLat.Nanoseconds(),
			BitIdentical: identical, Overhead: overhead,
		})
	}
	t.flush()

	out, err := json.MarshalIndent(&rep, "", "  ")
	must(err)
	must(os.WriteFile("BENCH_shard.json", append(out, '\n'), 0o644))
	fmt.Printf("\nwrote BENCH_shard.json\n")
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
