// Command urbane-bench regenerates every exhibit of the evaluation: one
// experiment per table/figure in DESIGN.md's per-experiment index (E1–E9).
// Output is textual — the same rows the paper's plots are drawn from.
//
// Usage:
//
//	urbane-bench -exp all            # run everything
//	urbane-bench -exp E3 -scale 2    # one experiment, 2x the default size
//	urbane-bench -list               # describe the experiments
//
// Absolute timings depend on the host (the GPU is simulated in software);
// the paper-versus-measured comparison lives in EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"text/tabwriter"
	"time"
)

// experiment is one regenerable exhibit.
type experiment struct {
	id    string
	title string
	run   func(scale float64)
}

var experiments = []experiment{
	{"E1", "Map view: taxi pickups Jan 2009 by neighborhood (Fig. 1)", runE1},
	{"E2", "Raster pipeline correctness: approximate vs accurate vs exact (Fig. 2)", runE2},
	{"E3", "Query latency vs number of points (performance figure)", runE3},
	{"E4", "Query latency vs number of polygons (performance figure)", runE4},
	{"E5", "Bounded raster join: error vs epsilon (accuracy table)", runE5},
	{"E6", "Pre-aggregation cube vs raster join on ad-hoc queries", runE6},
	{"E7", "Interactivity across resolutions (demo scenario 3.1)", runE7},
	{"E8", "Data exploration view: multi-data-set time series", runE8},
	{"E9", "Hybrid ablation: approximate vs accurate vs index join", runE9},
	{"E10", "Strategy ablation: points-first vs polygons-first raster join", runE10},
	{"E11", "OD flow view: raster flow join vs geometric baseline", runE11},
	{"E12", "Filter selectivity: ad-hoc constraints cost nothing extra", runE12},
	{"E13", "Polygon level-of-detail: simplification tolerance ablation", runE13},
	{"E16", "Parallel sharded point pass: worker scaling, bit-identical results", runE16},
	{"E17", "Region span cache: cold vs warm vs disabled on the tract layer", runE17},
	{"E19", "GeoBlocks hierarchy: arbitrary-polygon selectivity sweep vs raster path", runE19},
	{"E20", "Columnar segments: filter-selectivity sweep, block pruning vs full scan", runE20},
	{"E21", "Incremental windows: one-slab slide over cached partials vs cold fold", runE21},
	{"E22", "Spatial sharding: scatter-gather shard-count sweep, bit-identical results", runE22},
}

func main() {
	exp := flag.String("exp", "all", "experiment id (E1..E9) or 'all'")
	scale := flag.Float64("scale", 1.0, "workload scale factor (points multiply by this)")
	list := flag.Bool("list", false, "list experiments and exit")
	flag.Parse()

	if *list {
		w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		for _, e := range experiments {
			fmt.Fprintf(w, "%s\t%s\n", e.id, e.title)
		}
		w.Flush()
		return
	}
	want := strings.ToUpper(*exp)
	ran := 0
	for _, e := range experiments {
		if want != "ALL" && e.id != want {
			continue
		}
		fmt.Printf("\n=== %s: %s ===\n", e.id, e.title)
		start := time.Now()
		e.run(*scale)
		fmt.Printf("--- %s done in %v ---\n", e.id, time.Since(start).Round(time.Millisecond))
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", *exp)
		os.Exit(2)
	}
}

// table prints aligned rows.
type table struct {
	w *tabwriter.Writer
}

func newTable(headers ...string) *table {
	t := &table{w: tabwriter.NewWriter(os.Stdout, 4, 4, 2, ' ', 0)}
	fmt.Fprintln(t.w, strings.Join(headers, "\t"))
	rule := make([]string, len(headers))
	for i, h := range headers {
		rule[i] = strings.Repeat("-", len(h))
	}
	fmt.Fprintln(t.w, strings.Join(rule, "\t"))
	return t
}

func (t *table) row(cells ...any) {
	strs := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			strs[i] = fmt.Sprintf("%.3g", v)
		case time.Duration:
			strs[i] = v.Round(10 * time.Microsecond).String()
		default:
			strs[i] = fmt.Sprint(c)
		}
	}
	fmt.Fprintln(t.w, strings.Join(strs, "\t"))
}

func (t *table) flush() { t.w.Flush() }

// timeMedian runs fn reps times and returns the median wall time.
func timeMedian(reps int, fn func()) time.Duration {
	if reps < 1 {
		reps = 1
	}
	times := make([]time.Duration, reps)
	for i := range times {
		start := time.Now()
		fn()
		times[i] = time.Since(start)
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	return times[len(times)/2]
}

// scaled returns base*scale, at least floor.
func scaled(base int, scale float64, floor int) int {
	n := int(float64(base) * scale)
	if n < floor {
		n = floor
	}
	return n
}
